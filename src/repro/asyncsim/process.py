"""Asynchronous process API.

An :class:`AsyncProcess` is an event-driven state machine: the runner wires
it to a :class:`ProcessContext` and invokes ``on_start`` once, then
``on_message`` per delivery and ``on_fd_change`` per detector update.
Handlers run atomically at a simulated instant; crashes take effect between
events (message-granular crash interleavings are the synchronous engines'
job — MR99-style indulgent protocols are safe under any interleaving, which
the property tests check through delay/churn randomisation instead).

Unlike the synchronous API there is no round structure: protocols must tag
messages with their own round numbers (Section 4 of the paper points to
exactly this as an intrinsic cost of asynchrony).

Mirroring :class:`repro.sync.api.BatchedAlgorithm`, an asynchronous
algorithm may additionally register a **columnar table**
(:class:`AsyncBatchedTable` via :func:`register_async_table`): one object
holding every process's state in pid-indexed parallel lists, fed raw
delivery tuples by the runner.  The table applies each event straight to
its columns and re-evaluates the protocol's wait conditions only when the
event can actually satisfy one — instead of re-running the per-object
``_progress`` state machine on every callback — while emitting exactly
the sends the per-object processes would (byte-identical runs, pinned by
``tests/asyncsim/test_batched_async_parity.py``).
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Sequence

from repro.asyncsim.events import EventQueue
from repro.asyncsim.failure_detector import SimulatedDiamondS
from repro.asyncsim.network import AsyncNetwork
from repro.errors import ConfigurationError, ModelViolationError
from repro.net.message import Message, MessageKind

__all__ = [
    "ProcessContext",
    "AsyncProcess",
    "AsyncBatchedTable",
    "register_async_table",
    "async_table_for",
]


class ProcessContext:
    """Capabilities handed to one process by the runner."""

    def __init__(
        self,
        pid: int,
        n: int,
        queue: EventQueue,
        network: AsyncNetwork,
        detector: SimulatedDiamondS,
        local_deliver: Callable[[Message], None],
    ) -> None:
        self.pid = pid
        self.n = n
        self._queue = queue
        self._network = network
        self._detector = detector
        self._local_deliver = local_deliver

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._queue.now

    def send(self, dest: int, tag: str, payload: Any, round_no: int = 0) -> None:
        """Send one protocol message."""
        if not 1 <= dest <= self.n:
            raise ModelViolationError(f"p{self.pid}: bad destination {dest}")
        network = self._network
        if network.pooled:
            # Pooled tuple path: no Message construction on the send side.
            if dest == self.pid:
                self._queue.schedule(
                    0.0,
                    network._deliver_entry,
                    (0, self.pid, dest, round_no, payload, tag),
                )
            else:
                network.send_pooled(self.pid, dest, round_no, payload, tag)
            return
        msg = Message(
            MessageKind.ASYNC, self.pid, dest, round_no, payload=payload, tag=tag
        )
        if dest == self.pid:
            # Self-delivery is local (no wire, no accounting) but deferred
            # through the event queue at zero delay: delivering synchronously
            # would re-enter the protocol handler that is sending right now,
            # and the outer frame would then resume with stale state.
            self._queue.schedule(0.0, self._local_deliver, msg)
        else:
            self._network.send(msg)

    def broadcast(self, tag: str, payload: Any, round_no: int = 0) -> None:
        """Send to every process including self (self delivery is local).

        Delegates to the network's batched broadcast: byte-identical to a
        loop of :meth:`send` over ``1..n`` but with one bulk accounting
        charge and no per-message closures.
        """
        self._network.broadcast(
            self.pid, self.n, tag, payload, round_no, self._local_deliver
        )

    def suspects(self, pid: int) -> bool:
        """Query this process's failure-detector module."""
        return self._detector.suspects(self.pid, pid)

    def suspected(self) -> frozenset[int]:
        """The full current suspect list."""
        return self._detector.suspected(self.pid)


class AsyncProcess(abc.ABC):
    """Base class for asynchronous protocol processes."""

    def __init__(self, pid: int, n: int) -> None:
        if n < 1 or not 1 <= pid <= n:
            raise ConfigurationError(f"bad pid/n: {pid}/{n}")
        self.pid = pid
        self.n = n
        self.ctx: ProcessContext | None = None  # wired by the runner
        self._decided = False
        self._decision: Any = None
        self._decision_time = 0.0
        self._decision_round = 0
        #: Runner-installed callback fired once on the first decision, so
        #: the run loop's stop predicate can be O(1) instead of scanning
        #: every process between every event.
        self._settle_hook: Callable[[int], None] | None = None

    # -- runner wiring -------------------------------------------------------

    def attach(self, ctx: ProcessContext) -> None:
        """Install the runner-provided context (once)."""
        if self.ctx is not None:
            raise ConfigurationError(f"p{self.pid} attached twice")
        self.ctx = ctx

    # -- protocol hooks --------------------------------------------------------

    @abc.abstractmethod
    def on_start(self) -> None:
        """Called once at time 0."""

    @abc.abstractmethod
    def on_message(self, msg: Message) -> None:
        """Called per delivered message."""

    def on_fd_change(self) -> None:
        """Called when this process's suspect list may have changed."""

    # -- decision --------------------------------------------------------------

    def decide(self, value: Any, round_no: int = 0) -> None:
        """Record the (single) decision; the process may keep participating."""
        if self._decided:
            if value != self._decision:
                raise ModelViolationError(
                    f"p{self.pid} decided twice with different values"
                )
            return
        self._decided = True
        self._decision = value
        self._decision_time = self.ctx.now if self.ctx is not None else 0.0
        self._decision_round = round_no
        if self._settle_hook is not None:
            self._settle_hook(self.pid)

    @property
    def decided(self) -> bool:
        return self._decided

    @property
    def decision(self) -> Any:
        return self._decision

    @property
    def decision_time(self) -> float:
        return self._decision_time

    @property
    def decision_round(self) -> int:
        return self._decision_round


# ---------------------------------------------------------------------------
# Batched stepping: columnar tables over event-tuple deliveries.
# ---------------------------------------------------------------------------


class AsyncBatchedTable(abc.ABC):
    """Columnar drop-in for a whole table of same-typed async processes.

    The runner normally dispatches every delivery through an
    :class:`AsyncProcess` object — one ``on_message`` plus one full
    ``_progress`` re-evaluation per event.  A table holds all per-process
    protocol state in pid-indexed parallel lists and consumes raw pooled
    delivery tuples; it applies each event to its columns and re-runs the
    (mirrored) progress machine only when the event can actually satisfy
    the destination's current wait condition.

    Contract (parity with per-object stepping depends on all of it):

    * handlers must emit exactly the sends the per-object process would,
      in the same order, through the same network primitives — delay
      draws and event sequence numbers then line up and runs are
      byte-identical (``tests/asyncsim/test_batched_async_parity.py``);
    * a *skipped* progress re-evaluation must be provably side-effect
      free in the per-object code (the guard conditions under-approximate
      "this event unblocks the destination" exactly);
    * the table is the authoritative copy of protocol state; decisions
      are mirrored back onto the process objects (value, time, round,
      settle hook) so runner results and user-held references stay true,
      other attributes are not kept in sync mid-run.
    """

    @classmethod
    @abc.abstractmethod
    def from_processes(
        cls,
        processes: Sequence[AsyncProcess],
        network: AsyncNetwork,
        detector: SimulatedDiamondS,
    ) -> "AsyncBatchedTable":
        """Build the columnar table from freshly constructed processes."""

    def bind_run(self, stats: Any, crashed: dict[int, float]) -> None:
        """Install the run's stats ledger and live crash map.

        Called by the runner after construction (and after every reset):
        :meth:`deliver` charges delivered-side accounting and drops
        messages into the void itself, so the runner can schedule it as
        the delivery action with no intermediate frame.
        """
        self.stats = stats
        self.crashed = crashed

    @abc.abstractmethod
    def on_start(self, pid: int) -> None:
        """The runner's time-0 start event for ``pid``."""

    @abc.abstractmethod
    def deliver(self, entry: tuple) -> None:
        """One delivery event: ``(bits, sender, dest, round_no, payload, tag)``.

        Scheduled directly as the event action on the pooled path — the
        single Python frame per delivered message.  Implementations must,
        in order: charge ``stats.async_delivered``/``bits_delivered`` by
        ``entry[0]`` when nonzero (local self-deliveries carry 0 and are
        never charged), drop the message if ``entry[2]`` is in
        :attr:`crashed`, then apply the protocol handler.
        """

    @abc.abstractmethod
    def on_fd_change(self, observer: int) -> None:
        """``observer``'s suspect list may have changed."""

    #: Refill capability advertisement (mirror of
    #: :attr:`repro.sync.api.BatchedAlgorithm.supports_refill`): tables
    #: that implement :meth:`refill` set this True, letting a leased
    #: runner rerun a configuration without rebuilding processes or table.
    supports_refill: bool = False

    def refill(self, proposals: Sequence[Any]) -> bool:
        """Rewrite the columns in place for a fresh run with ``proposals``.

        Returns True when taken (the columns must then equal what
        ``from_processes`` over freshly constructed same-configuration
        processes would build — byte-identical runs, pinned by the refill
        parity grid), False when unsupported.  The runner re-arms the
        retained process objects' decision mirrors itself.
        """
        return False


#: Exact process type -> table factory.  Keyed by exact type (not
#: ``isinstance``) for the same reason as the synchronous registry: a
#: subclass overriding a handler must not silently inherit its parent's
#: batched semantics.
_ASYNC_TABLES: dict[type, Callable[..., AsyncBatchedTable]] = {}


def register_async_table(
    process_cls: type,
) -> Callable[[type[AsyncBatchedTable]], type[AsyncBatchedTable]]:
    """Class decorator: register a columnar table for ``process_cls``.

    ::

        @register_async_table(MR99Consensus)
        class MR99Table(AsyncBatchedTable): ...
    """

    def deco(table_cls: type[AsyncBatchedTable]) -> type[AsyncBatchedTable]:
        if process_cls in _ASYNC_TABLES:
            raise ConfigurationError(
                f"{process_cls.__name__} already has an async batched table"
            )
        _ASYNC_TABLES[process_cls] = table_cls.from_processes
        return table_cls

    return deco


def async_table_for(
    processes: Sequence[AsyncProcess],
    network: AsyncNetwork,
    detector: SimulatedDiamondS,
) -> AsyncBatchedTable | None:
    """The columnar table for ``processes``, or None when unavailable.

    Requires a homogeneous table (every process of the exact registered
    type) *and* the network's pooled tuple path — a ``per_message`` delay
    model forces per-object stepping, since tables never build the
    messages such a model needs to inspect.
    """
    if not processes or not network.pooled:
        return None
    cls = type(processes[0])
    factory = _ASYNC_TABLES.get(cls)
    if factory is None:
        return None
    if any(type(p) is not cls for p in processes):
        return None
    return factory(processes, network, detector)

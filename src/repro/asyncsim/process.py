"""Asynchronous process API.

An :class:`AsyncProcess` is an event-driven state machine: the runner wires
it to a :class:`ProcessContext` and invokes ``on_start`` once, then
``on_message`` per delivery and ``on_fd_change`` per detector update.
Handlers run atomically at a simulated instant; crashes take effect between
events (message-granular crash interleavings are the synchronous engines'
job — MR99-style indulgent protocols are safe under any interleaving, which
the property tests check through delay/churn randomisation instead).

Unlike the synchronous API there is no round structure: protocols must tag
messages with their own round numbers (Section 4 of the paper points to
exactly this as an intrinsic cost of asynchrony).
"""

from __future__ import annotations

import abc
from typing import Any, Callable

from repro.asyncsim.events import EventQueue
from repro.asyncsim.failure_detector import SimulatedDiamondS
from repro.asyncsim.network import AsyncNetwork
from repro.errors import ConfigurationError, ModelViolationError
from repro.net.message import Message, MessageKind

__all__ = ["ProcessContext", "AsyncProcess"]


class ProcessContext:
    """Capabilities handed to one process by the runner."""

    def __init__(
        self,
        pid: int,
        n: int,
        queue: EventQueue,
        network: AsyncNetwork,
        detector: SimulatedDiamondS,
        local_deliver: Callable[[Message], None],
    ) -> None:
        self.pid = pid
        self.n = n
        self._queue = queue
        self._network = network
        self._detector = detector
        self._local_deliver = local_deliver

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._queue.now

    def send(self, dest: int, tag: str, payload: Any, round_no: int = 0) -> None:
        """Send one protocol message."""
        if not 1 <= dest <= self.n:
            raise ModelViolationError(f"p{self.pid}: bad destination {dest}")
        msg = Message(
            MessageKind.ASYNC, self.pid, dest, round_no, payload=payload, tag=tag
        )
        if dest == self.pid:
            # Self-delivery is local (no wire, no accounting) but deferred
            # through the event queue at zero delay: delivering synchronously
            # would re-enter the protocol handler that is sending right now,
            # and the outer frame would then resume with stale state.
            self._queue.schedule(0.0, self._local_deliver, msg)
        else:
            self._network.send(msg)

    def broadcast(self, tag: str, payload: Any, round_no: int = 0) -> None:
        """Send to every process including self (self delivery is local).

        Delegates to the network's batched broadcast: byte-identical to a
        loop of :meth:`send` over ``1..n`` but with one bulk accounting
        charge and no per-message closures.
        """
        self._network.broadcast(
            self.pid, self.n, tag, payload, round_no, self._local_deliver
        )

    def suspects(self, pid: int) -> bool:
        """Query this process's failure-detector module."""
        return self._detector.suspects(self.pid, pid)

    def suspected(self) -> frozenset[int]:
        """The full current suspect list."""
        return self._detector.suspected(self.pid)


class AsyncProcess(abc.ABC):
    """Base class for asynchronous protocol processes."""

    def __init__(self, pid: int, n: int) -> None:
        if n < 1 or not 1 <= pid <= n:
            raise ConfigurationError(f"bad pid/n: {pid}/{n}")
        self.pid = pid
        self.n = n
        self.ctx: ProcessContext | None = None  # wired by the runner
        self._decided = False
        self._decision: Any = None
        self._decision_time = 0.0
        self._decision_round = 0
        #: Runner-installed callback fired once on the first decision, so
        #: the run loop's stop predicate can be O(1) instead of scanning
        #: every process between every event.
        self._settle_hook: Callable[[int], None] | None = None

    # -- runner wiring -------------------------------------------------------

    def attach(self, ctx: ProcessContext) -> None:
        """Install the runner-provided context (once)."""
        if self.ctx is not None:
            raise ConfigurationError(f"p{self.pid} attached twice")
        self.ctx = ctx

    # -- protocol hooks --------------------------------------------------------

    @abc.abstractmethod
    def on_start(self) -> None:
        """Called once at time 0."""

    @abc.abstractmethod
    def on_message(self, msg: Message) -> None:
        """Called per delivered message."""

    def on_fd_change(self) -> None:
        """Called when this process's suspect list may have changed."""

    # -- decision --------------------------------------------------------------

    def decide(self, value: Any, round_no: int = 0) -> None:
        """Record the (single) decision; the process may keep participating."""
        if self._decided:
            if value != self._decision:
                raise ModelViolationError(
                    f"p{self.pid} decided twice with different values"
                )
            return
        self._decided = True
        self._decision = value
        self._decision_time = self.ctx.now if self.ctx is not None else 0.0
        self._decision_round = round_no
        if self._settle_hook is not None:
            self._settle_hook(self.pid)

    @property
    def decided(self) -> bool:
        return self._decided

    @property
    def decision(self) -> Any:
        return self._decision

    @property
    def decision_time(self) -> float:
        return self._decision_time

    @property
    def decision_round(self) -> int:
        return self._decision_round

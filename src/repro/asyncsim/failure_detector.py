"""Simulated failure detectors of the Chandra–Toueg hierarchy.

MR99 (the algorithm the paper's Section 4 bridges to) is designed for ◇S:

* **strong completeness** — every crashed process is eventually suspected
  by every correct process, and
* **eventual weak accuracy** — eventually some correct process is never
  suspected.

A simulation owns the ground truth (who crashed when), so the detector is
modelled behaviourally: before a per-observer *stabilization time* it may
erroneously suspect arbitrary live processes (rng-driven churn); after it,
its output is exactly the crashed set with a detection latency — which
satisfies ◇P and therefore ◇S.  The churn phase is what exercises MR99's
indulgence (coordinator wrongly suspected ⇒ round wasted, never safety
lost).

Suspicion changes are *pushed*: the detector invokes a callback so the
event-driven protocol can re-evaluate its waits without polling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.asyncsim.events import EventQueue
from repro.errors import ConfigurationError
from repro.util.rng import RandomSource

__all__ = ["DetectorSpec", "SimulatedDiamondS"]


@dataclass(frozen=True)
class DetectorSpec:
    """Behavioural parameters of the simulated detector.

    Attributes
    ----------
    stabilization_time:
        Before this simulated time the detector may make mistakes;
        after it, output is ground truth with ``detection_latency`` lag.
    detection_latency:
        How long after a crash the (stabilized) detector reports it.
    churn_rate:
        Expected number of false-suspicion events per observer per time
        unit before stabilization (0 = a perfect detector from the start).
    false_suspicion_duration:
        How long an erroneous suspicion lasts before being retracted.
    """

    stabilization_time: float = 0.0
    detection_latency: float = 1.0
    churn_rate: float = 0.0
    false_suspicion_duration: float = 1.0

    def __post_init__(self) -> None:
        if self.stabilization_time < 0 or self.detection_latency < 0:
            raise ConfigurationError("times must be >= 0")
        if self.churn_rate < 0 or self.false_suspicion_duration <= 0:
            raise ConfigurationError("churn_rate >= 0, duration > 0 required")


class SimulatedDiamondS:
    """One ◇S module per observer process, sharing ground truth.

    ``on_change(observer)`` is called whenever ``suspected(observer)``
    may have changed, letting protocols re-check their wait conditions.
    """

    def __init__(
        self,
        n: int,
        queue: EventQueue,
        spec: DetectorSpec,
        rng: RandomSource,
        on_change: Callable[[int], None] | None = None,
    ) -> None:
        if n < 1:
            raise ConfigurationError("need at least one process")
        self.n = n
        self.queue = queue
        self.spec = spec
        self.on_change = on_change or (lambda observer: None)
        self.reset(rng)

    def reset(self, rng: RandomSource) -> None:
        """Return to the freshly constructed state for a new run.

        Re-derives the ``"fd"`` child stream from ``rng`` exactly as
        construction does, clears ground truth and every observer's
        suspicions, and reschedules the pre-stabilization churn — the
        queue must already be rewound.  Reused by leased runners; a reset
        detector is indistinguishable from a new one.
        """
        n = self.n
        self.rng = rng.spawn("fd")
        self._crashed: set[int] = set()  # ground truth
        self._reported: dict[int, set[int]] = {i: set() for i in range(1, n + 1)}
        self._false: dict[int, set[int]] = {i: set() for i in range(1, n + 1)}
        if self.spec.churn_rate > 0 and self.spec.stabilization_time > 0:
            for observer in range(1, n + 1):
                self._schedule_churn(observer)

    # -- ground-truth hooks (called by the runner) --------------------------

    def notify_crash(self, pid: int) -> None:
        """Record a real crash; schedule its detection at every observer."""
        self._crashed.add(pid)
        schedule = self.queue.schedule
        latency_bound = self.spec.detection_latency
        uniform = self.rng.uniform
        for observer in range(1, self.n + 1):
            if observer == pid:
                continue
            # Detection latency is per (observer, crashed) pair.  One
            # shared bound method carries (observer, pid) as the event
            # argument — no closure per observer.
            schedule(latency_bound * uniform(0.5, 1.0), self._report, (observer, pid))

    def _report(self, entry: tuple[int, int]) -> None:
        observer, pid = entry
        if pid not in self._reported[observer]:
            self._reported[observer].add(pid)
            self.on_change(observer)

    # -- pre-stabilization churn --------------------------------------------

    def _schedule_churn(self, observer: int) -> None:
        gap = self.rng.exponential(1.0 / self.spec.churn_rate)
        when = self.queue.now + gap
        if when >= self.spec.stabilization_time:
            return  # churn ends at stabilization

        def misfire() -> None:
            victim = self.rng.randint(1, self.n)
            if victim != observer and victim not in self._reported[observer]:
                self._false[observer].add(victim)
                self.on_change(observer)
                self.queue.schedule(
                    self.spec.false_suspicion_duration,
                    lambda: self._retract(observer, victim),
                )
            self._schedule_churn(observer)

        self.queue.schedule(gap, misfire)

    def _retract(self, observer: int, victim: int) -> None:
        if victim in self._false[observer]:
            self._false[observer].discard(victim)
            self.on_change(observer)

    # -- queries -------------------------------------------------------------

    def suspected(self, observer: int) -> frozenset[int]:
        """Current suspect list of ``observer`` (the paper's read-only var)."""
        return frozenset(self._reported[observer] | self._false[observer])

    def suspects(self, observer: int, pid: int) -> bool:
        """Does ``observer`` currently suspect ``pid``?"""
        return pid in self._reported[observer] or pid in self._false[observer]

    @property
    def ground_truth_crashed(self) -> frozenset[int]:
        """Processes that actually crashed (for assertions in tests)."""
        return frozenset(self._crashed)

"""Chandra–Toueg ◇S consensus (the paper's reference [5]).

Chandra and Toueg's algorithm is the original rotating-coordinator
consensus for asynchronous systems augmented with an eventually strong
failure detector, and the source of the *value locking* vocabulary the
paper uses for its Lemma 2 ("some authors say the value is then locked
[5, 12]").  Implementing it next to MR99 makes the Section-4 comparison
three-way: one synchronous and two asynchronous realizations of the same
coordinator/lock pattern.

Round ``r`` (coordinator ``c = ((r-1) mod n) + 1``), requires ``t < n/2``:

1. **estimate** — every process sends ``EST(r, est, ts)`` to ``c``, where
   ``ts`` is the round in which ``est`` was last adopted;
2. **select** — ``c`` collects ``> n/2`` estimates, keeps one with the
   largest ``ts``, and broadcasts ``TRY(r, est_c)``;
3. **ack/nack** — every process waits for ``TRY(r)`` or suspicion of
   ``c``; on TRY it adopts (``est := est_c``, ``ts := r``) and sends
   ``ACK(r)``, otherwise ``NACK(r)``;
4. **lock** — ``c`` collects ``> n/2`` ACK/NACK votes; if all-but-nacks…
   precisely: if the ACKs alone exceed ``n/2`` the value is *locked* and
   ``c`` reliably broadcasts ``DECIDE(est_c)``; otherwise the round is
   lost and everyone moves on.

The timestamp rule gives the locking property: once a majority adopted
``v`` in round ``r``, every later coordinator's majority estimate set
intersects that majority, and the max-timestamp pick can only select
``v``.  Reliable broadcast is implemented as relay-on-first-receipt, so a
coordinator crashing mid-DECIDE cannot split the outcome.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from repro.asyncsim.process import AsyncProcess
from repro.errors import ConfigurationError
from repro.net.message import Message

__all__ = ["ChandraTouegConsensus"]


class ChandraTouegConsensus(AsyncProcess):
    """One CT process (requires ``t < n/2``)."""

    def __init__(self, pid: int, n: int, proposal: Any, t: int) -> None:
        super().__init__(pid, n)
        if not 0 <= t < n / 2:
            raise ConfigurationError(
                f"Chandra-Toueg needs a correct majority: t={t}, n={n}"
            )
        self.proposal = proposal
        self.t = t
        self.est: Any = proposal
        self.ts = 0  # round of last adoption
        self.r = 1
        self.phase = 1  # 1: send estimate / 2: wait TRY / handled per round
        self._sent_est: set[int] = set()
        self._sent_vote: set[int] = set()
        self._sent_try: set[int] = set()
        self._my_try: dict[int, Any] = {}  # rounds I coordinated -> value I proposed
        self._sent_decide = False
        # Coordinator-side buffers.
        self._estimates: dict[int, dict[int, tuple[Any, int]]] = defaultdict(dict)
        self._votes: dict[int, dict[int, bool]] = defaultdict(dict)  # sender -> ack?
        # Participant-side buffer.
        self._try: dict[int, Any] = {}
        self.rounds_executed = 0

    @staticmethod
    def coordinator(round_no: int, n: int) -> int:
        return ((round_no - 1) % n) + 1

    @property
    def _majority(self) -> int:
        return self.n // 2 + 1

    # -- wiring ---------------------------------------------------------------

    def on_start(self) -> None:
        self._progress()

    def on_fd_change(self) -> None:
        if not self.decided:
            self._progress()

    def on_message(self, msg: Message) -> None:
        if msg.tag == "DECIDE":
            self._on_decide(msg.payload)
            return
        if self.decided:
            return
        if msg.tag == "EST":
            est, ts = msg.payload
            self._estimates[msg.round_no].setdefault(msg.sender, (est, ts))
        elif msg.tag == "TRY":
            if msg.sender == self.coordinator(msg.round_no, self.n):
                self._try.setdefault(msg.round_no, msg.payload)
        elif msg.tag == "ACK":
            self._votes[msg.round_no].setdefault(msg.sender, True)
        elif msg.tag == "NACK":
            self._votes[msg.round_no].setdefault(msg.sender, False)
        self._progress()

    def _on_decide(self, value: Any) -> None:
        if not self.decided:
            self.est = value
            self.decide(value, round_no=self.r)
            self.ctx.broadcast("DECIDE", value, round_no=self.r)  # reliable relay

    # -- state machine ------------------------------------------------------------

    def _check_lock(self) -> bool:
        """Step 4 for every round I coordinated: decide on an ACK majority.

        Votes trickle in after the coordinator has moved on to later
        rounds, so the quorum check must cover past rounds, not only the
        current one.
        """
        for r, value in self._my_try.items():
            votes = self._votes[r]
            acks = sum(1 for ack in votes.values() if ack)
            if acks >= self._majority and not self._sent_decide:
                self._sent_decide = True
                self._on_decide(value)
                return True
        return False

    def _progress(self) -> None:
        if self._check_lock():
            return
        while not self.decided:
            r = self.r
            c = self.coordinator(r, self.n)

            # Step 1: ship my estimate to the round's coordinator (once).
            if r not in self._sent_est:
                self._sent_est.add(r)
                self.ctx.send(c, "EST", (self.est, self.ts), round_no=r)

            # Coordinator: step 2 — select the freshest estimate, broadcast.
            if self.pid == c and r not in self._sent_try:
                ests = self._estimates[r]
                if len(ests) >= self._majority:
                    best_est, _best_ts = max(ests.values(), key=lambda pair: pair[1])
                    self._sent_try.add(r)
                    self._my_try[r] = best_est
                    self.ctx.broadcast("TRY", best_est, round_no=r)

            # Participant: step 3 — vote once per round.
            if r not in self._sent_vote:
                if r in self._try:
                    self.est = self._try[r]
                    self.ts = r
                    self._sent_vote.add(r)
                    self.ctx.send(c, "ACK", None, round_no=r)
                elif self.ctx.suspects(c):
                    self._sent_vote.add(r)
                    self.ctx.send(c, "NACK", None, round_no=r)
                else:
                    return  # wait for TRY or suspicion

            # Advance; past-round coordinator duties continue via buffers
            # and _check_lock on later events.
            self.rounds_executed += 1
            self.r += 1

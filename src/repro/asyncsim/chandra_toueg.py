"""Chandra–Toueg ◇S consensus (the paper's reference [5]).

Chandra and Toueg's algorithm is the original rotating-coordinator
consensus for asynchronous systems augmented with an eventually strong
failure detector, and the source of the *value locking* vocabulary the
paper uses for its Lemma 2 ("some authors say the value is then locked
[5, 12]").  Implementing it next to MR99 makes the Section-4 comparison
three-way: one synchronous and two asynchronous realizations of the same
coordinator/lock pattern.

Round ``r`` (coordinator ``c = ((r-1) mod n) + 1``), requires ``t < n/2``:

1. **estimate** — every process sends ``EST(r, est, ts)`` to ``c``, where
   ``ts`` is the round in which ``est`` was last adopted;
2. **select** — ``c`` collects ``> n/2`` estimates, keeps one with the
   largest ``ts``, and broadcasts ``TRY(r, est_c)``;
3. **ack/nack** — every process waits for ``TRY(r)`` or suspicion of
   ``c``; on TRY it adopts (``est := est_c``, ``ts := r``) and sends
   ``ACK(r)``, otherwise ``NACK(r)``;
4. **lock** — ``c`` collects ``> n/2`` ACK/NACK votes; if all-but-nacks…
   precisely: if the ACKs alone exceed ``n/2`` the value is *locked* and
   ``c`` reliably broadcasts ``DECIDE(est_c)``; otherwise the round is
   lost and everyone moves on.

The timestamp rule gives the locking property: once a majority adopted
``v`` in round ``r``, every later coordinator's majority estimate set
intersects that majority, and the max-timestamp pick can only select
``v``.  Reliable broadcast is implemented as relay-on-first-receipt, so a
coordinator crashing mid-DECIDE cannot split the outcome.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Sequence

from repro.asyncsim.failure_detector import SimulatedDiamondS
from repro.asyncsim.network import AsyncNetwork
from repro.asyncsim.process import AsyncBatchedTable, AsyncProcess, register_async_table
from repro.errors import ConfigurationError
from repro.net.message import Message
from repro.util.tables import fill_column, refill_column

__all__ = ["ChandraTouegConsensus", "ChandraTouegTable"]


class ChandraTouegConsensus(AsyncProcess):
    """One CT process (requires ``t < n/2``)."""

    def __init__(self, pid: int, n: int, proposal: Any, t: int) -> None:
        super().__init__(pid, n)
        if not 0 <= t < n / 2:
            raise ConfigurationError(
                f"Chandra-Toueg needs a correct majority: t={t}, n={n}"
            )
        self.proposal = proposal
        self.t = t
        self.est: Any = proposal
        self.ts = 0  # round of last adoption
        self.r = 1
        self.phase = 1  # 1: send estimate / 2: wait TRY / handled per round
        self._sent_est: set[int] = set()
        self._sent_vote: set[int] = set()
        self._sent_try: set[int] = set()
        self._my_try: dict[int, Any] = {}  # rounds I coordinated -> value I proposed
        self._sent_decide = False
        # Coordinator-side buffers.
        self._estimates: dict[int, dict[int, tuple[Any, int]]] = defaultdict(dict)
        self._votes: dict[int, dict[int, bool]] = defaultdict(dict)  # sender -> ack?
        # Participant-side buffer.
        self._try: dict[int, Any] = {}
        self.rounds_executed = 0

    @staticmethod
    def coordinator(round_no: int, n: int) -> int:
        return ((round_no - 1) % n) + 1

    @property
    def _majority(self) -> int:
        return self.n // 2 + 1

    # -- wiring ---------------------------------------------------------------

    def on_start(self) -> None:
        self._progress()

    def on_fd_change(self) -> None:
        if not self.decided:
            self._progress()

    def on_message(self, msg: Message) -> None:
        if msg.tag == "DECIDE":
            self._on_decide(msg.payload, msg.round_no)
            return
        if self.decided:
            return
        if msg.tag == "EST":
            est, ts = msg.payload
            self._estimates[msg.round_no].setdefault(msg.sender, (est, ts))
        elif msg.tag == "TRY":
            if msg.sender == self.coordinator(msg.round_no, self.n):
                self._try.setdefault(msg.round_no, msg.payload)
        elif msg.tag == "ACK":
            self._votes[msg.round_no].setdefault(msg.sender, True)
        elif msg.tag == "NACK":
            self._votes[msg.round_no].setdefault(msg.sender, False)
        self._progress()

    def _on_decide(self, value: Any, round_no: int) -> None:
        """Decide ``value``; ``round_no`` is the original deciding round.

        Deciders pass their own current round, flood learners pass the
        round carried by the DECIDE message, and the relay propagates it
        unchanged — so every process records the same ``decision_round``
        (relayers used to stamp their own round, splitting the records).
        """
        if not self.decided:
            self.est = value
            self.decide(value, round_no=round_no)
            self.ctx.broadcast("DECIDE", value, round_no=round_no)  # reliable relay

    # -- state machine ------------------------------------------------------------

    def _check_lock(self) -> bool:
        """Step 4 for every round I coordinated: decide on an ACK majority.

        Votes trickle in after the coordinator has moved on to later
        rounds, so the quorum check must cover past rounds, not only the
        current one.
        """
        for r, value in self._my_try.items():
            votes = self._votes[r]
            acks = sum(1 for ack in votes.values() if ack)
            if acks >= self._majority and not self._sent_decide:
                self._sent_decide = True
                self._on_decide(value, self.r)
                return True
        return False

    def _progress(self) -> None:
        if self._check_lock():
            return
        while not self.decided:
            r = self.r
            c = self.coordinator(r, self.n)

            # Step 1: ship my estimate to the round's coordinator (once).
            if r not in self._sent_est:
                self._sent_est.add(r)
                self.ctx.send(c, "EST", (self.est, self.ts), round_no=r)

            # Coordinator: step 2 — select the freshest estimate, broadcast.
            if self.pid == c and r not in self._sent_try:
                ests = self._estimates[r]
                if len(ests) >= self._majority:
                    best_est, _best_ts = max(ests.values(), key=lambda pair: pair[1])
                    self._sent_try.add(r)
                    self._my_try[r] = best_est
                    self.ctx.broadcast("TRY", best_est, round_no=r)

            # Participant: step 3 — vote once per round.
            if r not in self._sent_vote:
                if r in self._try:
                    self.est = self._try[r]
                    self.ts = r
                    self._sent_vote.add(r)
                    self.ctx.send(c, "ACK", None, round_no=r)
                elif self.ctx.suspects(c):
                    self._sent_vote.add(r)
                    self.ctx.send(c, "NACK", None, round_no=r)
                else:
                    return  # wait for TRY or suspicion

            # Advance; past-round coordinator duties continue via buffers
            # and _check_lock on later events.
            self.rounds_executed += 1
            self.r += 1


# ---------------------------------------------------------------------------
# Columnar table: the batched fast path over the same state machine.
# ---------------------------------------------------------------------------


@register_async_table(ChandraTouegConsensus)
class ChandraTouegTable(AsyncBatchedTable):
    """All CT processes of one run, in pid-indexed parallel columns.

    Same discipline as :class:`repro.asyncsim.mr99.MR99Table`: buffer
    updates are applied straight to the columns, and the (mirrored)
    ``_progress`` state machine re-runs only when the event can satisfy
    the destination's current wait.  A blocked CT process is always at
    the vote-wait of its current round ``r`` (EST shipped, vote pending),
    so:

    * ``EST(ρ)``  wakes the coordinator of ``ρ`` iff ``ρ`` is its current
      round, TRY is unsent, and the arrival completes the majority;
    * ``TRY(ρ)``  wakes ``p`` iff ``ρ`` is ``p``'s current round;
    * ``ACK(ρ)``  wakes a past/present coordinator iff it completes an
      ACK majority for a round it coordinated (the lock step);
    * ``NACK`` never wakes anyone (it cannot complete an ACK majority);
    * a detector change wakes ``p`` iff it now suspects its current
      round's coordinator.

    Per-round ACK tallies are kept incrementally, so the lock check costs
    one integer compare per ACK instead of a vote-dict scan per event.
    """

    def __init__(
        self,
        processes: Sequence[ChandraTouegConsensus],
        network: AsyncNetwork,
        detector: SimulatedDiamondS,
    ) -> None:
        procs = sorted(processes, key=lambda p: p.pid)
        self.n = procs[0].n
        self.t = procs[0].t
        self.majority = self.n // 2 + 1
        self.network = network
        self.detector = detector
        self.procs = procs
        self.est: list[Any] = [p.est for p in procs]
        self.ts: list[int] = [p.ts for p in procs]
        self.r: list[int] = [p.r for p in procs]
        self.decided: list[bool] = [p.decided for p in procs]
        # Monotone "done through round" markers replace the per-object
        # sets — a CT process never revisits a round's send duties.
        self.est_sent: list[int] = [0] * self.n
        self.vote_sent: list[int] = [0] * self.n
        self.try_sent: list[int] = [0] * self.n
        self.sent_decide: list[bool] = [False] * self.n
        self.my_try: list[dict[int, Any]] = [{} for _ in procs]
        self.estimates: list[dict[int, dict[int, tuple[Any, int]]]] = [
            {} for _ in procs
        ]
        self.votes: list[dict[int, dict[int, bool]]] = [{} for _ in procs]
        self.ack_counts: list[dict[int, int]] = [{} for _ in procs]
        self.trybuf: list[dict[int, Any]] = [{} for _ in procs]
        self.rounds_executed: list[int] = [0] * self.n

    @classmethod
    def from_processes(
        cls,
        processes: Sequence[ChandraTouegConsensus],
        network: AsyncNetwork,
        detector: SimulatedDiamondS,
    ) -> "ChandraTouegTable":
        return cls(processes, network, detector)

    supports_refill = True

    def refill(self, proposals: Sequence[Any]) -> bool:
        """Re-arm every column to the fresh-process state (est = proposal)."""
        refill_column(self.est, proposals)
        fill_column(self.ts, 0)
        fill_column(self.r, 1)
        fill_column(self.decided, False)
        fill_column(self.est_sent, 0)
        fill_column(self.vote_sent, 0)
        fill_column(self.try_sent, 0)
        fill_column(self.sent_decide, False)
        fill_column(self.rounds_executed, 0)
        for column in (
            self.my_try, self.estimates, self.votes, self.ack_counts, self.trybuf
        ):
            for buffered in column:
                buffered.clear()
        return True

    # -- event handlers ------------------------------------------------------

    def on_start(self, pid: int) -> None:
        self._progress(pid - 1)

    def deliver(self, entry: tuple) -> None:
        bits, sender, dest, round_no, payload, tag = entry
        if bits:  # wire delivery: charge in place (0 = local self-delivery)
            stats = self.stats
            stats.async_delivered += 1
            stats.bits_delivered += bits
        if dest in self.crashed:
            return  # delivered into the void
        i = dest - 1
        if tag == "DECIDE":
            self._decide(i, payload, round_no)
            return
        if self.decided[i]:
            return
        if tag == "EST":
            rounds = self.estimates[i]
            ests = rounds.get(round_no)
            if ests is None:
                ests = rounds[round_no] = {}
            if sender not in ests:
                ests[sender] = payload  # (est, ts) pair
                if (
                    round_no == self.r[i]
                    and dest == ((round_no - 1) % self.n) + 1
                    and self.try_sent[i] < round_no
                    and len(ests) >= self.majority
                ):
                    self._progress(i)
        elif tag == "TRY":
            if sender == ((round_no - 1) % self.n) + 1:
                trybuf = self.trybuf[i]
                if round_no not in trybuf:
                    trybuf[round_no] = payload
                    if round_no == self.r[i]:
                        self._progress(i)
        elif tag == "ACK":
            rounds = self.votes[i]
            votes = rounds.get(round_no)
            if votes is None:
                votes = rounds[round_no] = {}
            if sender not in votes:
                votes[sender] = True
                counts = self.ack_counts[i]
                count = counts.get(round_no, 0) + 1
                counts[round_no] = count
                if (
                    not self.sent_decide[i]
                    and round_no in self.my_try[i]
                    and count >= self.majority
                ):
                    self._progress(i)
        elif tag == "NACK":
            rounds = self.votes[i]
            votes = rounds.get(round_no)
            if votes is None:
                votes = rounds[round_no] = {}
            votes.setdefault(sender, False)
            # A NACK can never complete an ACK majority: no wake.

    def on_fd_change(self, observer: int) -> None:
        i = observer - 1
        if self.decided[i]:
            return
        r = self.r[i]
        if r in self.trybuf[i] or self.detector.suspects(
            observer, ((r - 1) % self.n) + 1
        ):
            self._progress(i)

    # -- state machine -------------------------------------------------------

    def _send(self, sender: int, dest: int, tag: str, payload: Any, r: int) -> None:
        """Mirror of ``ProcessContext.send`` on the pooled tuple path."""
        network = self.network
        if dest == sender:
            network.queue.schedule(
                0.0, network._deliver_entry, (0, sender, dest, r, payload, tag)
            )
        else:
            network.send_pooled(sender, dest, r, payload, tag)

    def _decide(self, i: int, value: Any, round_no: int) -> None:
        """Mirror of ``_on_decide``: record, mirror back, relay the round on."""
        if self.decided[i]:
            return
        self.decided[i] = True
        self.est[i] = value
        self.procs[i].decide(value, round_no=round_no)
        self.network.broadcast(i + 1, self.n, "DECIDE", value, round_no, None)

    def _check_lock(self, i: int) -> bool:
        """Step 4 for every round ``p_{i+1}`` coordinated (exact mirror)."""
        if self.sent_decide[i]:
            return False
        counts = self.ack_counts[i]
        majority = self.majority
        for r, value in self.my_try[i].items():
            if counts.get(r, 0) >= majority:
                self.sent_decide[i] = True
                self._decide(i, value, self.r[i])
                return True
        return False

    def _progress(self, i: int) -> None:
        """Drive ``p_{i+1}`` as far as current knowledge allows (exact mirror)."""
        if self._check_lock(i):
            return
        pid = i + 1
        n = self.n
        majority = self.majority
        detector = self.detector
        trybuf = self.trybuf[i]
        while not self.decided[i]:
            r = self.r[i]
            c = ((r - 1) % n) + 1

            # Step 1: ship my estimate to the round's coordinator (once).
            if self.est_sent[i] < r:
                self.est_sent[i] = r
                self._send(pid, c, "EST", (self.est[i], self.ts[i]), r)

            # Coordinator: step 2 — select the freshest estimate, broadcast.
            if pid == c and self.try_sent[i] < r:
                ests = self.estimates[i].get(r)
                if ests is not None and len(ests) >= majority:
                    best_est, _best_ts = max(
                        ests.values(), key=lambda pair: pair[1]
                    )
                    self.try_sent[i] = r
                    self.my_try[i][r] = best_est
                    self.network.broadcast(pid, n, "TRY", best_est, r, None)

            # Participant: step 3 — vote once per round.
            if self.vote_sent[i] < r:
                if r in trybuf:
                    self.est[i] = trybuf[r]
                    self.ts[i] = r
                    self.vote_sent[i] = r
                    self._send(pid, c, "ACK", None, r)
                elif detector.suspects(pid, c):
                    self.vote_sent[i] = r
                    self._send(pid, c, "NACK", None, r)
                else:
                    return  # wait for TRY or suspicion
            self.rounds_executed[i] += 1
            self.r[i] = r + 1

"""MR99: the ◇S-based asynchronous consensus of Mostéfaoui–Raynal (DISC'99).

Section 4 of the paper is an extended comparison between its synchronous
algorithm and MR99: each MR99 round is coordinated and has **two
communication steps**, and the paper's COMMIT message plays exactly the
role of MR99's second step — establishing that "everyone knows the
coordinator's estimate", i.e. that the value is locked.  This module makes
the bridge executable.

Round ``r`` (coordinator ``c = ((r-1) mod n) + 1``), for process ``p``:

1. **Step 1** — ``c`` broadcasts ``EST(r, est_c)``.  ``p`` waits until it
   receives it or its detector suspects ``c``; sets ``aux`` to the estimate
   or ``⊥``.
2. **Step 2** — ``p`` broadcasts ``AUX(r, aux)`` and waits for such
   messages from at least ``n - t`` processes ("as many as possible while
   preventing deadlock").  Let ``rec`` be the received values:

   * ``rec = {v}``      → decide ``v`` (and flood ``DECIDE(v)``);
   * ``v ∈ rec, v ≠ ⊥`` → adopt: ``est := v``;
   * ``rec = {⊥}``      → keep ``est``.

Safety needs ``t < n/2`` (quorum intersection: two ``n-t`` sets share a
process, and a process sends one ``aux`` per round); this is the "majority
of correct processes" requirement the paper quotes from [5].  The DECIDE
flood gives termination for processes lagging behind a decided one.

Messages carry their round number explicitly — the asynchronous cost the
paper contrasts with synchronous rounds — and the implementation buffers
early arrivals for future rounds, re-evaluating its wait conditions after
every event (message or detector change).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from repro.asyncsim.process import AsyncProcess
from repro.errors import ConfigurationError
from repro.net.message import Message

__all__ = ["MR99Consensus", "BOT"]


class _Bot:
    """The ⊥ placeholder (a process saw no coordinator estimate)."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "⊥"

    def bit_size(self) -> int:
        return 1


BOT = _Bot()


class MR99Consensus(AsyncProcess):
    """One MR99 process (requires ``t < n/2``)."""

    def __init__(self, pid: int, n: int, proposal: Any, t: int) -> None:
        super().__init__(pid, n)
        if not 0 <= t < n / 2:
            raise ConfigurationError(
                f"MR99 needs a majority of correct processes: t={t}, n={n}"
            )
        self.proposal = proposal
        self.t = t
        self.est: Any = proposal
        self.r = 1
        self.phase = 1
        self._sent_est: set[int] = set()  # rounds for which (as coord) EST went out
        self._sent_aux: set[int] = set()
        self._est_from_coord: dict[int, Any] = {}  # round -> coordinator estimate
        self._aux: dict[int, dict[int, Any]] = defaultdict(dict)  # round -> sender -> aux
        self.rounds_executed = 0

    # -- protocol ------------------------------------------------------------

    @staticmethod
    def coordinator(round_no: int, n: int) -> int:
        """Rotating coordinator: rounds 1..n map to p_1..p_n, then wrap."""
        return ((round_no - 1) % n) + 1

    def on_start(self) -> None:
        self._progress()

    def on_message(self, msg: Message) -> None:
        if self.decided and msg.tag != "DECIDE":
            return  # decided processes only relay decisions
        if msg.tag == "EST":
            # Only the round's coordinator legitimately sends EST.
            if msg.sender == self.coordinator(msg.round_no, self.n):
                self._est_from_coord.setdefault(msg.round_no, msg.payload)
        elif msg.tag == "AUX":
            self._aux[msg.round_no].setdefault(msg.sender, msg.payload)
        elif msg.tag == "DECIDE":
            self._on_decide(msg.payload)
            return
        self._progress()

    def on_fd_change(self) -> None:
        if not self.decided:
            self._progress()

    def _on_decide(self, value: Any) -> None:
        if not self.decided:
            self.est = value
            self.decide(value, round_no=self.r)
            # Relay so every lagging process terminates (reliable flood).
            self.ctx.broadcast("DECIDE", value, round_no=self.r)

    def _progress(self) -> None:
        """Drive the state machine as far as current knowledge allows."""
        while not self.decided:
            c = self.coordinator(self.r, self.n)
            if self.phase == 1:
                if self.pid == c and self.r not in self._sent_est:
                    self._sent_est.add(self.r)
                    self.ctx.broadcast("EST", self.est, round_no=self.r)
                if self.r in self._est_from_coord:
                    aux = self._est_from_coord[self.r]
                elif self.ctx.suspects(c):
                    aux = BOT
                else:
                    return  # still waiting on the coordinator or the detector
                if self.r not in self._sent_aux:
                    self._sent_aux.add(self.r)
                    self.ctx.broadcast("AUX", aux, round_no=self.r)
                self.phase = 2

            # Phase 2: wait for n - t AUX values of the current round.
            received = self._aux[self.r]
            if len(received) < self.n - self.t:
                return
            rec = set(received.values())
            self.rounds_executed += 1
            if len(rec) == 1 and BOT not in rec:
                (value,) = rec
                self._on_decide(value)
                return
            non_bot = rec - {BOT}
            if non_bot:
                # All non-⊥ values in a round equal the coordinator's
                # estimate, so adoption is unambiguous.
                (value,) = non_bot
                self.est = value
            self.r += 1
            self.phase = 1

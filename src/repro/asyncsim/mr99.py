"""MR99: the ◇S-based asynchronous consensus of Mostéfaoui–Raynal (DISC'99).

Section 4 of the paper is an extended comparison between its synchronous
algorithm and MR99: each MR99 round is coordinated and has **two
communication steps**, and the paper's COMMIT message plays exactly the
role of MR99's second step — establishing that "everyone knows the
coordinator's estimate", i.e. that the value is locked.  This module makes
the bridge executable.

Round ``r`` (coordinator ``c = ((r-1) mod n) + 1``), for process ``p``:

1. **Step 1** — ``c`` broadcasts ``EST(r, est_c)``.  ``p`` waits until it
   receives it or its detector suspects ``c``; sets ``aux`` to the estimate
   or ``⊥``.
2. **Step 2** — ``p`` broadcasts ``AUX(r, aux)`` and waits for such
   messages from at least ``n - t`` processes ("as many as possible while
   preventing deadlock").  Let ``rec`` be the received values:

   * ``rec = {v}``      → decide ``v`` (and flood ``DECIDE(v)``);
   * ``v ∈ rec, v ≠ ⊥`` → adopt: ``est := v``;
   * ``rec = {⊥}``      → keep ``est``.

Safety needs ``t < n/2`` (quorum intersection: two ``n-t`` sets share a
process, and a process sends one ``aux`` per round); this is the "majority
of correct processes" requirement the paper quotes from [5].  The DECIDE
flood gives termination for processes lagging behind a decided one.

Messages carry their round number explicitly — the asynchronous cost the
paper contrasts with synchronous rounds — and the implementation buffers
early arrivals for future rounds, re-evaluating its wait conditions after
every event (message or detector change).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Sequence

from repro.asyncsim.failure_detector import SimulatedDiamondS
from repro.asyncsim.network import AsyncNetwork
from repro.asyncsim.process import AsyncBatchedTable, AsyncProcess, register_async_table
from repro.errors import ConfigurationError
from repro.net.message import Message
from repro.util.tables import fill_column, refill_column

__all__ = ["MR99Consensus", "MR99Table", "BOT"]


class _Bot:
    """The ⊥ placeholder (a process saw no coordinator estimate)."""

    _instance = None

    #: Protocol marker consumed by :func:`repro.scenarios.record.jsonable`:
    #: ⊥ sentinels are recognized by this attribute, not by their repr, so
    #: a user payload that happens to print as "⊥" is never swallowed.
    __consensus_bottom__ = True

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "⊥"

    def bit_size(self) -> int:
        return 1


BOT = _Bot()


class MR99Consensus(AsyncProcess):
    """One MR99 process (requires ``t < n/2``)."""

    def __init__(self, pid: int, n: int, proposal: Any, t: int) -> None:
        super().__init__(pid, n)
        if not 0 <= t < n / 2:
            raise ConfigurationError(
                f"MR99 needs a majority of correct processes: t={t}, n={n}"
            )
        self.proposal = proposal
        self.t = t
        self.est: Any = proposal
        self.r = 1
        self.phase = 1
        self._sent_est: set[int] = set()  # rounds for which (as coord) EST went out
        self._sent_aux: set[int] = set()
        self._est_from_coord: dict[int, Any] = {}  # round -> coordinator estimate
        self._aux: dict[int, dict[int, Any]] = defaultdict(dict)  # round -> sender -> aux
        self.rounds_executed = 0

    # -- protocol ------------------------------------------------------------

    @staticmethod
    def coordinator(round_no: int, n: int) -> int:
        """Rotating coordinator: rounds 1..n map to p_1..p_n, then wrap."""
        return ((round_no - 1) % n) + 1

    def on_start(self) -> None:
        self._progress()

    def on_message(self, msg: Message) -> None:
        if self.decided and msg.tag != "DECIDE":
            return  # decided processes only relay decisions
        if msg.tag == "EST":
            # Only the round's coordinator legitimately sends EST.
            if msg.sender == self.coordinator(msg.round_no, self.n):
                self._est_from_coord.setdefault(msg.round_no, msg.payload)
        elif msg.tag == "AUX":
            self._aux[msg.round_no].setdefault(msg.sender, msg.payload)
        elif msg.tag == "DECIDE":
            self._on_decide(msg.payload, msg.round_no)
            return
        self._progress()

    def on_fd_change(self) -> None:
        if not self.decided:
            self._progress()

    def _on_decide(self, value: Any, round_no: int) -> None:
        """Decide ``value``, crediting the round in which it was *first* decided.

        ``round_no`` is the original deciding round: a process deciding
        out of its own phase 2 passes its current round, a process
        learning through the DECIDE flood passes the round carried by the
        message.  The relayed flood propagates that same round onward, so
        every process — decider or flood learner — records the identical
        ``decision_round`` (previously relayers stamped their own current
        round, splitting the recorded rounds across learners).
        """
        if not self.decided:
            self.est = value
            self.decide(value, round_no=round_no)
            # Relay so every lagging process terminates (reliable flood).
            self.ctx.broadcast("DECIDE", value, round_no=round_no)

    def _progress(self) -> None:
        """Drive the state machine as far as current knowledge allows."""
        while not self.decided:
            c = self.coordinator(self.r, self.n)
            if self.phase == 1:
                if self.pid == c and self.r not in self._sent_est:
                    self._sent_est.add(self.r)
                    self.ctx.broadcast("EST", self.est, round_no=self.r)
                if self.r in self._est_from_coord:
                    aux = self._est_from_coord[self.r]
                elif self.ctx.suspects(c):
                    aux = BOT
                else:
                    return  # still waiting on the coordinator or the detector
                if self.r not in self._sent_aux:
                    self._sent_aux.add(self.r)
                    self.ctx.broadcast("AUX", aux, round_no=self.r)
                self.phase = 2

            # Phase 2: wait for n - t AUX values of the current round.
            received = self._aux[self.r]
            if len(received) < self.n - self.t:
                return
            rec = set(received.values())
            self.rounds_executed += 1
            if len(rec) == 1 and BOT not in rec:
                (value,) = rec
                self._on_decide(value, self.r)
                return
            non_bot = rec - {BOT}
            if non_bot:
                # All non-⊥ values in a round equal the coordinator's
                # estimate, so adoption is unambiguous.
                (value,) = non_bot
                self.est = value
            self.r += 1
            self.phase = 1


# ---------------------------------------------------------------------------
# Columnar table: the batched fast path over the same state machine.
# ---------------------------------------------------------------------------


@register_async_table(MR99Consensus)
class MR99Table(AsyncBatchedTable):
    """All MR99 processes of one run, in pid-indexed parallel columns.

    The per-object process re-runs ``_progress`` on *every* delivered
    message and detector change; the table applies the event to its
    columns first and re-evaluates the state machine only when the event
    can satisfy the destination's current wait:

    * ``EST(ρ)``  wakes ``p`` iff ``ρ`` is ``p``'s current round and
      ``p`` is in phase 1 (waiting on exactly that coordinator estimate);
    * ``AUX(ρ)``  wakes ``p`` iff ``ρ`` is current, ``p`` is in phase 2,
      and the arrival completes the ``n - t`` quorum;
    * a detector change wakes ``p`` iff ``p`` is in phase 1 and now
      suspects its round's coordinator;
    * ``DECIDE`` short-circuits into the decision/flood handler.

    Every skipped re-evaluation corresponds to a per-object ``_progress``
    call that provably returns without sending or mutating state (the
    blocked-state invariant: after any handler, a process is waiting
    either for its coordinator's EST/suspicion or for the AUX quorum), so
    table runs emit the identical event stream — byte-identical results,
    pinned by the async parity grid.
    """

    def __init__(
        self,
        processes: Sequence[MR99Consensus],
        network: AsyncNetwork,
        detector: SimulatedDiamondS,
    ) -> None:
        procs = sorted(processes, key=lambda p: p.pid)
        self.n = procs[0].n
        self.t = procs[0].t
        self.n_minus_t = self.n - self.t
        self.network = network
        self.detector = detector
        self.procs = procs
        # One column per scalar of per-process state; index = pid - 1.
        self.est: list[Any] = [p.est for p in procs]
        self.r: list[int] = [p.r for p in procs]
        self.phase: list[int] = [p.phase for p in procs]
        self.decided: list[bool] = [p.decided for p in procs]
        self.est_sent: list[int] = [0] * self.n  # last round EST went out (as coord)
        self.aux_sent: list[int] = [0] * self.n  # last round AUX went out
        self.est_from_coord: list[dict[int, Any]] = [{} for _ in procs]
        self.aux: list[dict[int, dict[int, Any]]] = [{} for _ in procs]
        self.rounds_executed: list[int] = [0] * self.n

    @classmethod
    def from_processes(
        cls,
        processes: Sequence[MR99Consensus],
        network: AsyncNetwork,
        detector: SimulatedDiamondS,
    ) -> "MR99Table":
        return cls(processes, network, detector)

    supports_refill = True

    def refill(self, proposals: Sequence[Any]) -> bool:
        """Re-arm every column to the fresh-process state (est = proposal)."""
        refill_column(self.est, proposals)
        fill_column(self.r, 1)
        fill_column(self.phase, 1)
        fill_column(self.decided, False)
        fill_column(self.est_sent, 0)
        fill_column(self.aux_sent, 0)
        fill_column(self.rounds_executed, 0)
        for buffered in self.est_from_coord:
            buffered.clear()
        for buffered in self.aux:
            buffered.clear()
        return True

    # -- event handlers ------------------------------------------------------

    def on_start(self, pid: int) -> None:
        self._progress(pid - 1)

    def deliver(self, entry: tuple) -> None:
        bits, sender, dest, round_no, payload, tag = entry
        if bits:  # wire delivery: charge in place (0 = local self-delivery)
            stats = self.stats
            stats.async_delivered += 1
            stats.bits_delivered += bits
        if dest in self.crashed:
            return  # delivered into the void
        i = dest - 1
        if self.decided[i]:
            return  # decided processes already relayed; everything is a no-op
        if tag == "AUX":
            rounds = self.aux[i]
            auxmap = rounds.get(round_no)
            if auxmap is None:
                auxmap = rounds[round_no] = {}
            if sender not in auxmap:
                auxmap[sender] = payload
                if (
                    round_no == self.r[i]
                    and self.phase[i] == 2
                    and len(auxmap) >= self.n_minus_t
                ):
                    self._progress(i)
        elif tag == "EST":
            # Only the round's coordinator legitimately sends EST.
            if sender == ((round_no - 1) % self.n) + 1:
                ests = self.est_from_coord[i]
                if round_no not in ests:
                    ests[round_no] = payload
                    if round_no == self.r[i] and self.phase[i] == 1:
                        self._progress(i)
        elif tag == "DECIDE":
            self._decide(i, payload, round_no)

    def on_fd_change(self, observer: int) -> None:
        i = observer - 1
        if self.decided[i] or self.phase[i] != 1:
            return  # phase 2 never consults the detector
        r = self.r[i]
        if r in self.est_from_coord[i] or self.detector.suspects(
            observer, ((r - 1) % self.n) + 1
        ):
            self._progress(i)

    # -- state machine -------------------------------------------------------

    def _decide(self, i: int, value: Any, round_no: int) -> None:
        """Mirror of ``_on_decide``: record, mirror back, flood the round on."""
        if self.decided[i]:
            return
        self.decided[i] = True
        self.est[i] = value
        # Mirror onto the process object: value, timestamp, round, settle
        # hook — runner results and user-held references stay true.
        self.procs[i].decide(value, round_no=round_no)
        self.network.broadcast(i + 1, self.n, "DECIDE", value, round_no, None)

    def _progress(self, i: int) -> None:
        """Drive ``p_{i+1}`` as far as current knowledge allows (exact mirror)."""
        pid = i + 1
        n = self.n
        quorum = self.n_minus_t
        detector = self.detector
        est_from_coord = self.est_from_coord[i]
        aux_rounds = self.aux[i]
        while not self.decided[i]:
            r = self.r[i]
            c = ((r - 1) % n) + 1
            if self.phase[i] == 1:
                if pid == c and self.est_sent[i] < r:
                    self.est_sent[i] = r
                    self.network.broadcast(pid, n, "EST", self.est[i], r, None)
                if r in est_from_coord:
                    aux = est_from_coord[r]
                elif detector.suspects(pid, c):
                    aux = BOT
                else:
                    return  # still waiting on the coordinator or the detector
                if self.aux_sent[i] < r:
                    self.aux_sent[i] = r
                    self.network.broadcast(pid, n, "AUX", aux, r, None)
                self.phase[i] = 2

            # Phase 2: wait for n - t AUX values of the current round.
            received = aux_rounds.get(r)
            if received is None or len(received) < quorum:
                return
            rec = set(received.values())
            self.rounds_executed[i] += 1
            if len(rec) == 1 and BOT not in rec:
                (value,) = rec
                self._decide(i, value, r)
                return
            non_bot = rec - {BOT}
            if non_bot:
                (value,) = non_bot
                self.est[i] = value
            self.r[i] = r + 1
            self.phase[i] = 1

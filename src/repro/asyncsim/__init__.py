"""Asynchronous substrate: event simulator, ◇S detector, MR99 consensus."""

from repro.asyncsim.chandra_toueg import ChandraTouegConsensus
from repro.asyncsim.events import EventQueue
from repro.asyncsim.failure_detector import DetectorSpec, SimulatedDiamondS
from repro.asyncsim.mr99 import BOT, MR99Consensus
from repro.asyncsim.network import (
    AsyncNetwork,
    ConstantDelay,
    DelayModel,
    GstDelay,
    LogNormalDelay,
    UniformDelay,
)
from repro.asyncsim.process import AsyncProcess, ProcessContext
from repro.asyncsim.runner import AsyncCrash, AsyncRunner, AsyncRunResult

__all__ = [
    "ChandraTouegConsensus",
    "EventQueue",
    "DetectorSpec",
    "SimulatedDiamondS",
    "BOT",
    "MR99Consensus",
    "AsyncNetwork",
    "ConstantDelay",
    "DelayModel",
    "GstDelay",
    "LogNormalDelay",
    "UniformDelay",
    "AsyncProcess",
    "ProcessContext",
    "AsyncCrash",
    "AsyncRunner",
    "AsyncRunResult",
]

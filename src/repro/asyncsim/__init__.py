"""Asynchronous substrate: event simulator, ◇S detector, MR99 consensus."""

from repro.asyncsim.chandra_toueg import ChandraTouegConsensus, ChandraTouegTable
from repro.asyncsim.events import EventQueue
from repro.asyncsim.failure_detector import DetectorSpec, SimulatedDiamondS
from repro.asyncsim.mr99 import BOT, MR99Consensus, MR99Table
from repro.asyncsim.network import (
    AsyncNetwork,
    ConstantDelay,
    DelayModel,
    GstDelay,
    LogNormalDelay,
    UniformDelay,
)
from repro.asyncsim.process import (
    AsyncBatchedTable,
    AsyncProcess,
    ProcessContext,
    async_table_for,
    register_async_table,
)
from repro.asyncsim.runner import AsyncCrash, AsyncRunner, AsyncRunResult

__all__ = [
    "ChandraTouegConsensus",
    "ChandraTouegTable",
    "EventQueue",
    "DetectorSpec",
    "SimulatedDiamondS",
    "BOT",
    "MR99Consensus",
    "MR99Table",
    "AsyncNetwork",
    "ConstantDelay",
    "DelayModel",
    "GstDelay",
    "LogNormalDelay",
    "UniformDelay",
    "AsyncBatchedTable",
    "AsyncProcess",
    "ProcessContext",
    "async_table_for",
    "register_async_table",
    "AsyncCrash",
    "AsyncRunner",
    "AsyncRunResult",
]

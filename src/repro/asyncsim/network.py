"""Asynchronous network: reliable channels with model-driven delays.

The asynchronous system of Section 4 has no bound on message delay; a
:class:`DelayModel` supplies per-message delays (the simulation equivalent
of an adversarial scheduler).  Channels stay reliable and, as in the rest
of the library, nothing is ever lost, duplicated, or altered — a crashed
recipient simply never processes what arrives after its crash.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable

from repro.asyncsim.events import EventQueue
from repro.errors import ConfigurationError
from repro.net.accounting import MessageStats
from repro.net.message import Message, MessageKind
from repro.util.rng import RandomSource

__all__ = [
    "DelayModel",
    "ConstantDelay",
    "UniformDelay",
    "LogNormalDelay",
    "GstDelay",
    "AsyncNetwork",
]


class DelayModel(abc.ABC):
    """Produces a delivery delay for each message."""

    @abc.abstractmethod
    def delay(self, msg: Message, now: float, rng: RandomSource) -> float:
        """Delay (>= 0) to apply to ``msg`` sent at time ``now``."""


@dataclass(frozen=True)
class ConstantDelay(DelayModel):
    """Every message takes exactly ``value`` time units."""

    value: float = 1.0

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ConfigurationError("delay must be >= 0")

    def delay(self, msg: Message, now: float, rng: RandomSource) -> float:
        return self.value


@dataclass(frozen=True)
class UniformDelay(DelayModel):
    """Uniform delay in ``[lo, hi]``."""

    lo: float = 0.5
    hi: float = 1.5

    def __post_init__(self) -> None:
        if not 0 <= self.lo <= self.hi:
            raise ConfigurationError(f"need 0 <= lo <= hi, got [{self.lo}, {self.hi}]")

    def delay(self, msg: Message, now: float, rng: RandomSource) -> float:
        return rng.uniform(self.lo, self.hi)


@dataclass(frozen=True)
class LogNormalDelay(DelayModel):
    """Heavy-tailed delays (LAN with rare stragglers)."""

    mu: float = 0.0
    sigma: float = 0.5

    def delay(self, msg: Message, now: float, rng: RandomSource) -> float:
        return rng.lognormal(self.mu, self.sigma)


@dataclass(frozen=True)
class GstDelay(DelayModel):
    """Partial synchrony: arbitrary (bounded-by-``wild``) delays before the
    Global Stabilization Time, at most ``bound`` after it.

    This is the delay regime under which an eventually-accurate failure
    detector makes sense: timeouts are wrong before GST and right after.
    """

    gst: float = 10.0
    wild: float = 5.0
    bound: float = 1.0

    def __post_init__(self) -> None:
        if self.gst < 0 or self.wild <= 0 or self.bound <= 0:
            raise ConfigurationError("gst >= 0, wild > 0, bound > 0 required")

    def delay(self, msg: Message, now: float, rng: RandomSource) -> float:
        if now < self.gst:
            return rng.uniform(0.0, self.wild)
        return rng.uniform(self.bound * 0.1, self.bound)


class AsyncNetwork:
    """Routes messages through the event queue with per-message delays.

    Delivery scheduling is batched: one shared bound method is the action
    of every delivery event (the message and its precomputed bit cost ride
    along as the event argument), so a send allocates no closure and no
    label string, and :meth:`broadcast` charges a whole fan-out's
    accounting in one bulk call.
    """

    def __init__(
        self,
        queue: EventQueue,
        delay_model: DelayModel,
        rng: RandomSource,
        deliver: Callable[[Message], None],
        stats: MessageStats | None = None,
    ) -> None:
        self.queue = queue
        self.delay_model = delay_model
        self.rng = rng
        self._deliver = deliver
        self.stats = stats if stats is not None else MessageStats()

    def _deliver_one(self, entry: tuple[Message, int]) -> None:
        """Shared delivery action: charge the precomputed bits, hand over."""
        msg, bits = entry
        self.stats.bulk_async(1, bits, delivered=True)
        self._deliver(msg)

    def send(self, msg: Message) -> None:
        """Send ``msg``; it will be delivered after a model-chosen delay."""
        if msg.kind is not MessageKind.ASYNC:
            raise ConfigurationError(
                f"the asynchronous network carries ASYNC messages, got {msg.kind}"
            )
        bits = msg.bits()
        self.stats.bulk_async(1, bits)
        delay = self.delay_model.delay(msg, self.queue.now, self.rng)
        if delay < 0:
            raise ConfigurationError(f"delay model produced negative delay {delay}")
        self.queue.schedule(delay, self._deliver_one, (msg, bits))

    def broadcast(
        self,
        sender: int,
        n: int,
        tag: str,
        payload: Any,
        round_no: int,
        local_deliver: Callable[[Message], None],
    ) -> None:
        """Send ``(tag, payload)`` to every process ``1..n`` from ``sender``.

        Behaviourally identical to ``n`` individual sends in destination
        order — per-destination delay draws and event sequence numbers
        are issued in exactly the same order, so runs are byte-identical
        to the unbatched loop — but the payload is sized once and the
        whole fan-out's send accounting lands in one bulk call.  The
        sender's own copy is delivered locally (zero delay, no wire, no
        accounting), matching
        :meth:`repro.asyncsim.process.ProcessContext.send`.
        """
        queue = self.queue
        schedule = queue.schedule
        model_delay = self.delay_model.delay
        rng = self.rng
        now = queue.now
        deliver_one = self._deliver_one
        bits = -1
        sent = 0
        total_bits = 0
        for dest in range(1, n + 1):
            msg = Message(
                MessageKind.ASYNC, sender, dest, round_no, payload=payload, tag=tag
            )
            if dest == sender:
                schedule(0.0, local_deliver, msg)
                continue
            if bits < 0:
                bits = msg.bits()
            delay = model_delay(msg, now, rng)
            if delay < 0:
                raise ConfigurationError(
                    f"delay model produced negative delay {delay}"
                )
            schedule(delay, deliver_one, (msg, bits))
            sent += 1
            total_bits += bits
        if sent:
            self.stats.bulk_async(sent, total_bits)

"""Asynchronous network: reliable channels with model-driven delays.

The asynchronous system of Section 4 has no bound on message delay; a
:class:`DelayModel` supplies per-message delays (the simulation equivalent
of an adversarial scheduler).  Channels stay reliable and, as in the rest
of the library, nothing is ever lost, duplicated, or altered — a crashed
recipient simply never processes what arrives after its crash.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable

from repro.asyncsim.events import EventQueue
from repro.errors import ConfigurationError
from repro.net.accounting import MessageStats
from repro.net.message import Message, MessageKind
from repro.util.rng import RandomSource

__all__ = [
    "DelayModel",
    "ConstantDelay",
    "UniformDelay",
    "LogNormalDelay",
    "GstDelay",
    "AsyncNetwork",
]


class DelayModel(abc.ABC):
    """Produces a delivery delay for each message."""

    @abc.abstractmethod
    def delay(self, msg: Message, now: float, rng: RandomSource) -> float:
        """Delay (>= 0) to apply to ``msg`` sent at time ``now``."""


@dataclass(frozen=True)
class ConstantDelay(DelayModel):
    """Every message takes exactly ``value`` time units."""

    value: float = 1.0

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ConfigurationError("delay must be >= 0")

    def delay(self, msg: Message, now: float, rng: RandomSource) -> float:
        return self.value


@dataclass(frozen=True)
class UniformDelay(DelayModel):
    """Uniform delay in ``[lo, hi]``."""

    lo: float = 0.5
    hi: float = 1.5

    def __post_init__(self) -> None:
        if not 0 <= self.lo <= self.hi:
            raise ConfigurationError(f"need 0 <= lo <= hi, got [{self.lo}, {self.hi}]")

    def delay(self, msg: Message, now: float, rng: RandomSource) -> float:
        return rng.uniform(self.lo, self.hi)


@dataclass(frozen=True)
class LogNormalDelay(DelayModel):
    """Heavy-tailed delays (LAN with rare stragglers)."""

    mu: float = 0.0
    sigma: float = 0.5

    def delay(self, msg: Message, now: float, rng: RandomSource) -> float:
        return rng.lognormal(self.mu, self.sigma)


@dataclass(frozen=True)
class GstDelay(DelayModel):
    """Partial synchrony: arbitrary (bounded-by-``wild``) delays before the
    Global Stabilization Time, at most ``bound`` after it.

    This is the delay regime under which an eventually-accurate failure
    detector makes sense: timeouts are wrong before GST and right after.
    """

    gst: float = 10.0
    wild: float = 5.0
    bound: float = 1.0

    def __post_init__(self) -> None:
        if self.gst < 0 or self.wild <= 0 or self.bound <= 0:
            raise ConfigurationError("gst >= 0, wild > 0, bound > 0 required")

    def delay(self, msg: Message, now: float, rng: RandomSource) -> float:
        if now < self.gst:
            return rng.uniform(0.0, self.wild)
        return rng.uniform(self.bound * 0.1, self.bound)


class AsyncNetwork:
    """Routes messages through the event queue with per-message delays."""

    def __init__(
        self,
        queue: EventQueue,
        delay_model: DelayModel,
        rng: RandomSource,
        deliver: Callable[[Message], None],
        stats: MessageStats | None = None,
    ) -> None:
        self.queue = queue
        self.delay_model = delay_model
        self.rng = rng
        self._deliver = deliver
        self.stats = stats if stats is not None else MessageStats()

    def send(self, msg: Message) -> None:
        """Send ``msg``; it will be delivered after a model-chosen delay."""
        if msg.kind is not MessageKind.ASYNC:
            raise ConfigurationError(
                f"the asynchronous network carries ASYNC messages, got {msg.kind}"
            )
        self.stats.on_send(msg)
        delay = self.delay_model.delay(msg, self.queue.now, self.rng)
        if delay < 0:
            raise ConfigurationError(f"delay model produced negative delay {delay}")

        def deliver() -> None:
            self.stats.on_deliver(msg)
            self._deliver(msg)

        self.queue.schedule(delay, deliver, label=f"deliver {msg.tag} {msg.sender}->{msg.dest}")

"""Asynchronous network: reliable channels with model-driven delays.

The asynchronous system of Section 4 has no bound on message delay; a
:class:`DelayModel` supplies per-message delays (the simulation equivalent
of an adversarial scheduler).  Channels stay reliable and, as in the rest
of the library, nothing is ever lost, duplicated, or altered — a crashed
recipient simply never processes what arrives after its crash.

Two delivery currencies coexist (mirroring the traced/fast split of the
synchronous engines):

* **Message objects** — :meth:`AsyncNetwork.send` carries one
  :class:`~repro.net.message.Message` per event, the reference path and
  the only one a ``per_message`` delay model can ride (such a model
  inspects the message to choose its delay);
* **pooled tuple entries** — when the runner installs a ``deliver_entry``
  callback and the delay model does not inspect messages (none of the
  built-ins do), sends and broadcasts schedule plain
  ``(bits, sender, dest, round_no, payload, tag)`` tuples instead.  No
  ``Message`` dataclass is constructed on the send side at all; the
  receiver either consumes the tuple directly (batched columnar tables)
  or materializes one ``Message`` per *delivered* message (per-object
  mode — messages bound for crashed destinations are never built).
  Delay draws, event sequence numbers, and accounting charges are issued
  in exactly the order of the object path, so the two are byte-identical
  run for run.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable

from repro.asyncsim.events import EventQueue
from repro.errors import ConfigurationError
from repro.net.accounting import MessageStats
from repro.net.message import Message, MessageKind, async_bits
from repro.util.rng import RandomSource

__all__ = [
    "DelayModel",
    "ConstantDelay",
    "UniformDelay",
    "LogNormalDelay",
    "GstDelay",
    "AsyncNetwork",
]


class DelayModel(abc.ABC):
    """Produces a delivery delay for each message.

    ``per_message`` declares whether :meth:`delay` inspects the ``msg``
    argument.  It defaults to ``True`` — the safe assumption for any
    subclass written against the documented signature — which keeps such
    models on the Message-materializing path.  The built-in models
    depend only on ``now`` and the RNG, so they declare
    ``per_message = False`` and the network serves them from the pooled
    tuple path (``msg`` is passed as ``None`` there, and the batched
    columnar tables become available).  A custom model that never reads
    message fields can opt into pooling the same way.
    """

    per_message: bool = True

    #: Whether a fan-out's wire deliveries all land at the same instant
    #: (every draw from one ``draw_many`` call is the same value).  The
    #: network forwards this to ``EventQueue.schedule_fanout(grouped=...)``
    #: so constant-delay broadcasts collapse into one same-instant block
    #: heap entry; random models keep the scan-free per-entry path.
    same_instant_fanouts: bool = False

    @abc.abstractmethod
    def delay(self, msg: Message | None, now: float, rng: RandomSource) -> float:
        """Delay (>= 0) to apply to ``msg`` sent at time ``now``."""

    def draw_many(self, k: int, now: float, rng: RandomSource) -> list[float]:
        """``k`` consecutive delay draws for messages sent at ``now``.

        Behaviourally identical to ``k`` :meth:`delay` calls (the built-in
        overrides consume the RNG in exactly the same way — broadcast
        fan-outs lean on that for byte-identical runs); only valid for
        models that are not ``per_message``.
        """
        delay = self.delay
        return [delay(None, now, rng) for _ in range(k)]


@dataclass(frozen=True)
class ConstantDelay(DelayModel):
    """Every message takes exactly ``value`` time units."""

    per_message = False  # pure function of nothing: pooled path eligible
    same_instant_fanouts = True  # every fan-out draw is the same value

    value: float = 1.0

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ConfigurationError("delay must be >= 0")

    def delay(self, msg: Message, now: float, rng: RandomSource) -> float:
        return self.value

    def draw_many(self, k: int, now: float, rng: RandomSource) -> list[float]:
        return [self.value] * k  # delay() never consumes the RNG


@dataclass(frozen=True)
class UniformDelay(DelayModel):
    """Uniform delay in ``[lo, hi]``."""

    per_message = False  # draws ignore the message: pooled path eligible

    lo: float = 0.5
    hi: float = 1.5

    def __post_init__(self) -> None:
        if not 0 <= self.lo <= self.hi:
            raise ConfigurationError(f"need 0 <= lo <= hi, got [{self.lo}, {self.hi}]")

    def delay(self, msg: Message, now: float, rng: RandomSource) -> float:
        return rng.uniform(self.lo, self.hi)

    def draw_many(self, k: int, now: float, rng: RandomSource) -> list[float]:
        # Inlined stdlib uniform (`lo + (hi - lo) * random()`): identical
        # floats to delay(), two Python frames fewer per draw.
        r = rng.raw.random
        lo, width = self.lo, self.hi - self.lo
        return [lo + width * r() for _ in range(k)]


@dataclass(frozen=True)
class LogNormalDelay(DelayModel):
    """Heavy-tailed delays (LAN with rare stragglers)."""

    per_message = False  # draws ignore the message: pooled path eligible

    mu: float = 0.0
    sigma: float = 0.5

    def delay(self, msg: Message, now: float, rng: RandomSource) -> float:
        return rng.lognormal(self.mu, self.sigma)

    def draw_many(self, k: int, now: float, rng: RandomSource) -> list[float]:
        ln, mu, sigma = rng.lognormal, self.mu, self.sigma
        return [ln(mu, sigma) for _ in range(k)]


@dataclass(frozen=True)
class GstDelay(DelayModel):
    """Partial synchrony: arbitrary (bounded-by-``wild``) delays before the
    Global Stabilization Time, at most ``bound`` after it.

    This is the delay regime under which an eventually-accurate failure
    detector makes sense: timeouts are wrong before GST and right after.
    """

    per_message = False  # draws depend on `now` only: pooled path eligible

    gst: float = 10.0
    wild: float = 5.0
    bound: float = 1.0

    def __post_init__(self) -> None:
        if self.gst < 0 or self.wild <= 0 or self.bound <= 0:
            raise ConfigurationError("gst >= 0, wild > 0, bound > 0 required")

    def delay(self, msg: Message, now: float, rng: RandomSource) -> float:
        if now < self.gst:
            return rng.uniform(0.0, self.wild)
        return rng.uniform(self.bound * 0.1, self.bound)

    def draw_many(self, k: int, now: float, rng: RandomSource) -> list[float]:
        # One regime per instant: branch once, then inlined stdlib
        # uniform per draw (identical floats to delay()).
        r = rng.raw.random
        if now < self.gst:
            wild = self.wild
            return [0.0 + (wild - 0.0) * r() for _ in range(k)]
        lo = self.bound * 0.1
        width = self.bound - lo
        return [lo + width * r() for _ in range(k)]


class AsyncNetwork:
    """Routes messages through the event queue with per-message delays.

    Delivery scheduling is batched: one shared bound method is the action
    of every delivery event (the payload and its precomputed bit cost ride
    along as the event argument), so a send allocates no closure and no
    label string, and :meth:`broadcast` charges a whole fan-out's
    accounting in one bulk call.

    ``deliver_entry``, when installed by the runner, enables the pooled
    tuple path (see the module docstring): it is scheduled directly as
    the delivery action and receives
    ``(bits, sender, dest, round_no, payload, tag)`` tuples.  The
    callback owns the delivered-side accounting — it must charge
    ``bulk_async(1, entry[0], delivered=True)`` when ``entry[0]`` is
    nonzero (``bits`` is 0 for local self-deliveries, which are never
    charged) *before* any crash-drop check, mirroring
    :meth:`_deliver_one`.  Flattening the charge into the receiver saves
    one Python frame per delivered message on the hottest path in the
    asynchronous simulator.  :attr:`pooled` reports whether the fast
    path is active (it also requires a delay model that does not inspect
    messages).
    """

    def __init__(
        self,
        queue: EventQueue,
        delay_model: DelayModel,
        rng: RandomSource,
        deliver: Callable[[Message], None],
        stats: MessageStats | None = None,
        deliver_entry: Callable[[tuple], None] | None = None,
    ) -> None:
        self.queue = queue
        self.delay_model = delay_model
        self.rng = rng
        self._deliver = deliver
        self._deliver_entry = deliver_entry
        self.stats = stats if stats is not None else MessageStats()
        self.pooled = deliver_entry is not None and not delay_model.per_message

    def reset(self, rng: RandomSource, stats: MessageStats) -> None:
        """Point the network at a fresh run's RNG stream and stats ledger.

        Everything else — queue, delay model, delivery callbacks — is
        per-configuration state that a leased runner keeps across runs.
        """
        self.rng = rng
        self.stats = stats

    def set_deliver_entry(self, deliver_entry: Callable[[tuple], None]) -> None:
        """Swap the pooled delivery action (runner wiring, per install).

        In batched mode the runner points this straight at the columnar
        table's ``deliver`` — one frame per delivered message; in
        per-object mode at its own Message-materializing dispatcher.
        Only valid when a ``deliver_entry`` was installed at
        construction (the pooled flag never changes).
        """
        self._deliver_entry = deliver_entry

    def _deliver_one(self, entry: tuple[Message, int]) -> None:
        """Shared delivery action: charge the precomputed bits, hand over."""
        msg, bits = entry
        self.stats.bulk_async(1, bits, delivered=True)
        self._deliver(msg)

    def send(self, msg: Message) -> None:
        """Send ``msg``; it will be delivered after a model-chosen delay."""
        if msg.kind is not MessageKind.ASYNC:
            raise ConfigurationError(
                f"the asynchronous network carries ASYNC messages, got {msg.kind}"
            )
        bits = msg.bits()
        self.stats.bulk_async(1, bits)
        delay = self.delay_model.delay(msg, self.queue.now, self.rng)
        if delay < 0:
            raise ConfigurationError(f"delay model produced negative delay {delay}")
        self.queue.schedule(delay, self._deliver_one, (msg, bits))

    def send_pooled(
        self, sender: int, dest: int, round_no: int, payload: Any, tag: str
    ) -> None:
        """Pooled point-to-point send: no :class:`Message` construction.

        Only valid while :attr:`pooled` is true; behaviourally identical
        to :meth:`send` of the equivalent ASYNC message (same delay draw,
        same accounting, same event ordering).
        """
        bits = async_bits(payload)
        self.stats.bulk_async(1, bits)
        delay = self.delay_model.delay(None, self.queue.now, self.rng)
        if delay < 0:
            raise ConfigurationError(f"delay model produced negative delay {delay}")
        self.queue.schedule(
            delay, self._deliver_entry, (bits, sender, dest, round_no, payload, tag)
        )

    def broadcast(
        self,
        sender: int,
        n: int,
        tag: str,
        payload: Any,
        round_no: int,
        local_deliver: Callable[[Message], None],
    ) -> None:
        """Send ``(tag, payload)`` to every process ``1..n`` from ``sender``.

        Behaviourally identical to ``n`` individual sends in destination
        order — per-destination delay draws and event sequence numbers
        are issued in exactly the same order, so runs are byte-identical
        to the unbatched loop — but the payload is sized once and the
        whole fan-out's send accounting lands in one bulk call.  The
        sender's own copy is delivered locally (zero delay, no wire, no
        accounting), matching
        :meth:`repro.asyncsim.process.ProcessContext.send`.

        With the pooled path active, the fan-out schedules tuple entries
        and constructs no messages at all; otherwise one ``Message`` per
        destination rides each delivery event.
        """
        queue = self.queue
        schedule = queue.schedule
        model_delay = self.delay_model.delay
        rng = self.rng
        now = queue.now
        bits = -1
        sent = 0
        total_bits = 0
        if self.pooled:
            bits = async_bits(payload)
            # One bulk draw for the whole wire fan-out: identical RNG
            # consumption to per-destination delay() calls, minus the
            # per-call dispatch.
            delays = self.delay_model.draw_many(n - 1, now, rng)
            if delays and min(delays) < 0:
                raise ConfigurationError(
                    f"delay model produced negative delay {min(delays)}"
                )
            # The sender's own copy slots into its in-order position at
            # zero delay and zero charged bits (local, no wire).
            delays.insert(sender - 1, 0.0)
            entries = [
                (bits, sender, dest, round_no, payload, tag)
                if dest != sender
                else (0, sender, dest, round_no, payload, tag)
                for dest in range(1, n + 1)
            ]
            # The whole fan-out — self-delivery included — shares one
            # action and one scheduling call; constant-delay models
            # additionally collapse the same-instant wire run into one
            # block heap entry.
            queue.schedule_fanout(
                self._deliver_entry, delays, entries,
                grouped=self.delay_model.same_instant_fanouts,
            )
            sent = n - 1
            total_bits = sent * bits
        else:
            deliver_one = self._deliver_one
            for dest in range(1, n + 1):
                msg = Message(
                    MessageKind.ASYNC, sender, dest, round_no, payload=payload, tag=tag
                )
                if dest == sender:
                    schedule(0.0, local_deliver, msg)
                    continue
                if bits < 0:
                    bits = msg.bits()
                delay = model_delay(msg, now, rng)
                if delay < 0:
                    raise ConfigurationError(
                        f"delay model produced negative delay {delay}"
                    )
                schedule(delay, deliver_one, (msg, bits))
                sent += 1
                total_bits += bits
        if sent:
            self.stats.bulk_async(sent, total_bits)

"""Run-trace analytics: per-round traffic, decision timelines, drop audits.

These views turn a :class:`~repro.sync.result.RunResult`'s event trace into
the small tables the experiment write-ups use: who sent how much when,
when each process decided, and what the adversary actually suppressed.
They also serve as machine-checkable *audits*: e.g. a COMMIT delivery in
the trace must always be preceded by the same round's DATA delivery on the
same channel (the pipelining invariant of the extended model).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sync.result import RunResult
from repro.util.tables import Table

__all__ = [
    "RoundTraffic",
    "traffic_by_round",
    "decision_timeline",
    "drop_audit",
    "verify_pipelining_invariant",
]


@dataclass(frozen=True, slots=True)
class RoundTraffic:
    """Delivered/dropped message counts for one round."""

    round_no: int
    data_delivered: int
    data_dropped: int
    control_delivered: int
    control_dropped: int
    crashes: int
    decisions: int


def _require_trace(result: RunResult) -> None:
    if not result.trace.enabled:
        raise ConfigurationError("trace analytics need a run with tracing enabled")


def traffic_by_round(result: RunResult) -> list[RoundTraffic]:
    """Per-round traffic profile of a traced run."""
    _require_trace(result)
    out = []
    for r in range(1, result.rounds_executed + 1):
        out.append(
            RoundTraffic(
                round_no=r,
                data_delivered=len(result.trace.events("deliver.data", round_no=r)),
                data_dropped=len(result.trace.events("drop.data", round_no=r)),
                control_delivered=len(result.trace.events("deliver.control", round_no=r)),
                control_dropped=len(result.trace.events("drop.control", round_no=r)),
                crashes=len(result.trace.events("crash", round_no=r)),
                decisions=len(result.trace.events("decide", round_no=r)),
            )
        )
    return out


def decision_timeline(result: RunResult) -> Table:
    """Round-by-round table of decisions and crashes (report-ready)."""
    _require_trace(result)
    table = Table(
        ["round", "deciders", "crashed", "data in", "ctrl in"],
        title="decision timeline",
    )
    for rt in traffic_by_round(result):
        deciders = sorted(
            e.pid for e in result.trace.events("decide", round_no=rt.round_no)
        )
        crashed = sorted(
            e.pid for e in result.trace.events("crash", round_no=rt.round_no)
        )
        table.add_row(
            rt.round_no,
            ",".join(f"p{p}" for p in deciders) or "-",
            ",".join(f"p{p}" for p in crashed) or "-",
            rt.data_delivered,
            rt.control_delivered,
        )
    return table


def drop_audit(result: RunResult) -> dict[str, int]:
    """What the adversary suppressed, by cause.

    ``sender_crash`` counts messages a crashing sender never got out (these
    are *not* in the trace: they were never sent — derived arithmetically),
    ``receiver_gone`` counts delivered-to-nobody sends (dropped at a
    crashed/decided receiver, which the trace does record).
    """
    _require_trace(result)
    receiver_gone = result.trace.count("drop.data") + result.trace.count("drop.control")
    return {
        "receiver_gone": receiver_gone,
        "delivered": result.stats.messages_delivered,
        "sent": result.stats.messages_sent,
    }


def verify_pipelining_invariant(result: RunResult) -> list[str]:
    """Check: a delivered COMMIT implies the same channel saw the same
    round's DATA delivery (control strictly follows a *completed* data
    step over reliable channels).

    Returns human-readable violations; empty list means the invariant
    holds.  This is the trace-level shadow of Figure 1's line-8 safety and
    should hold for **any** algorithm on the extended engine whose control
    destinations are a subset of its data destinations that round (true
    for CRW).
    """
    _require_trace(result)
    problems = []
    for ev in result.trace.events("deliver.control"):
        dest = ev.get("dest")
        data_same_channel = [
            d
            for d in result.trace.events("deliver.data", pid=ev.pid, round_no=ev.round_no)
            if d.get("dest") == dest
        ]
        if not data_same_channel:
            problems.append(
                f"round {ev.round_no}: COMMIT p{ev.pid}->p{dest} without DATA on that channel"
            )
    return problems

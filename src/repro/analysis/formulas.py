"""Every closed form the paper states, in one auditable place.

The experiment harness and the tests check *measured == formula* (or
``<= bound``); keeping the formulas in a single module makes the mapping
from the paper's statements to code reviewable at a glance, and the
formula tests double as documentation of each derivation.

All functions validate their inputs and raise
:class:`~repro.errors.ConfigurationError` on nonsense (negative ``f``,
``t >= n``, …), because a silent garbage-in bound would defeat the point.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = [
    "crw_round_bound",
    "floodset_rounds",
    "early_stopping_round_bound",
    "crw_best_messages",
    "crw_best_bits",
    "crw_worst_messages_bound",
    "crw_worst_bits_bound",
    "extended_time",
    "classic_time",
    "ffd_time_bound",
    "crossover_d",
    "simulation_blowup",
]


def _check(n: int | None = None, t: int | None = None, f: int | None = None) -> None:
    if n is not None and n < 2:
        raise ConfigurationError(f"n must be >= 2, got {n}")
    if t is not None:
        if t < 0:
            raise ConfigurationError(f"t must be >= 0, got {t}")
        if n is not None and t >= n:
            raise ConfigurationError(f"t must be < n, got t={t}, n={n}")
    if f is not None:
        if f < 0:
            raise ConfigurationError(f"f must be >= 0, got {f}")
        if t is not None and f > t:
            raise ConfigurationError(f"f must be <= t, got f={f}, t={t}")


# -- round complexity (Theorem 1 + the introduction's comparison table) -----


def crw_round_bound(f: int) -> int:
    """Theorem 1: no process decides after round ``f + 1``."""
    _check(f=f)
    return f + 1


def floodset_rounds(t: int) -> int:
    """FloodSet always runs ``t + 1`` rounds (no early stopping)."""
    _check(t=t)
    return t + 1


def early_stopping_round_bound(f: int, t: int) -> int:
    """Classic early-deciding uniform consensus: ``min(f + 2, t + 1)``."""
    _check(t=t, f=f)
    return min(f + 2, t + 1)


# -- bit complexity (Theorem 2) ----------------------------------------------


def crw_best_messages(n: int) -> int:
    """Failure-free: ``p_1`` sends ``n-1`` DATA plus ``n-1`` COMMIT."""
    _check(n=n)
    return 2 * (n - 1)


def crw_best_bits(n: int, v_bits: int) -> int:
    """Failure-free bits: ``(n-1)(|v| + 1)`` — each destination gets one
    ``|v|``-bit DATA and one 1-bit COMMIT."""
    _check(n=n)
    if v_bits < 1:
        raise ConfigurationError(f"|v| must be >= 1 bit, got {v_bits}")
    return (n - 1) * (v_bits + 1)


def _pair_sum(n: int, t: int) -> int:
    """``Σ_{r=1..t+1} (n - r)`` — the paper's worst-case per-kind count."""
    return sum(n - r for r in range(1, t + 2))


def crw_worst_messages_bound(n: int, t: int) -> int:
    """Theorem 2's worst-case message bound: ``Σ_{r=1..t+1} 2(n - r)``.

    Scenario: coordinator ``p_r`` sends its full ``n - r`` DATA messages
    and up to ``n - r`` COMMITs before crashing, for ``r = 1..t``, and
    ``p_{t+1}`` completes. The closed form equals
    ``2[(t+1)n - (t+1)(t+2)/2]``.
    """
    _check(n=n, t=t)
    return 2 * _pair_sum(n, t)


def crw_worst_bits_bound(n: int, t: int, v_bits: int) -> int:
    """Theorem 2's worst-case bit bound: ``Σ_{r=1..t+1} (n - r)(|v| + 1)``."""
    _check(n=n, t=t)
    if v_bits < 1:
        raise ConfigurationError(f"|v| must be >= 1 bit, got {v_bits}")
    return _pair_sum(n, t) * (v_bits + 1)


# -- timing (Section 2.2 / related work) ---------------------------------------


def extended_time(rounds: int, D: float, d: float) -> float:
    """``rounds × (D + d)``."""
    if rounds < 0 or D <= 0 or d < 0:
        raise ConfigurationError("need rounds >= 0, D > 0, d >= 0")
    return rounds * (D + d)


def classic_time(rounds: int, D: float) -> float:
    """``rounds × D``."""
    if rounds < 0 or D <= 0:
        raise ConfigurationError("need rounds >= 0, D > 0")
    return rounds * D


def ffd_time_bound(f: int, D: float, d_fd: float) -> float:
    """Fast-FD consensus decision-time bound ``D + (f + 1)·d_fd``
    (the paper's ``D + f·d`` plus our implementation's one-slot
    detector-settle offset)."""
    _check(f=f)
    if D <= 0 or d_fd < 0:
        raise ConfigurationError("need D > 0, d_fd >= 0")
    return D + (f + 1) * d_fd


def crossover_d(D: float, f: int) -> float:
    """Break-even ``d``: the extended algorithm beats classic
    early-stopping iff ``d < D / (f + 1)``."""
    _check(f=f)
    if D <= 0:
        raise ConfigurationError("D must be > 0")
    return D / (f + 1)


# -- cross-model simulation (Section 2.2) ----------------------------------------


def simulation_blowup(n: int) -> int:
    """Classic rounds per extended round in the adapter: one data round
    plus one round per control position, ``= n``."""
    _check(n=n)
    return n

"""Decision skew: how *simultaneous* are the decisions of one run?

The paper borrows its ordered-sending trick from the simultaneous-
Byzantine-agreement literature (Dolev–Reischuk–Strong [8], cited exactly
for "models where the sending order is relevant").  Figure 1 is *not*
simultaneous: under a commit-split crash, the top ids decide a round
before everyone else.  The skew — ``last decision round − first decision
round`` — quantifies that, and its behaviour is a fingerprint of the
commit design:

* failure-free: skew 0 (everyone decides in round 1);
* coordinator cascade (nothing delivered): skew 0 (everyone waits for the
  first live coordinator);
* commit splitter: skew ≥ 1 — the delivered prefix decides early, the
  rest needs the next coordinator;
* the skew is bounded by ``f`` (decisions happen between the first
  completed line 4 and round ``f+1``).

:func:`decision_skew` computes it for one run; :func:`skew_profile`
aggregates over an adversary sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sync.adversary import Adversary
from repro.sync.result import RunResult
from repro.util.rng import RandomSource
from repro.util.stats import Summary, summarize

__all__ = ["decision_skew", "SkewProfile", "skew_profile"]


def decision_skew(result: RunResult) -> int:
    """``last − first`` decision round (0 when at most one round decides,
    or when nobody decided)."""
    rounds = list(result.decision_rounds.values())
    if not rounds:
        return 0
    return max(rounds) - min(rounds)


@dataclass(frozen=True, slots=True)
class SkewProfile:
    """Skew statistics over a sweep."""

    adversary: str
    n: int
    runs: int
    skew: Summary
    max_skew: int
    skew_bounded_by_f: bool  # skew <= f in every run


def skew_profile(
    make_processes,
    adversary: Adversary,
    *,
    n: int,
    t: int,
    seeds: int = 30,
    adversary_name: str = "",
) -> SkewProfile:
    """Measure decision skew of ``make_processes()`` runs under an adversary.

    ``make_processes`` is a zero-argument factory returning the ``n``
    process list (fresh state per run).
    """
    from repro.sync.extended import ExtendedSynchronousEngine

    skews: list[float] = []
    bounded = True
    for seed in range(seeds):
        rng = RandomSource(seed)
        schedule = adversary.schedule(n, t, rng.spawn("adv"))
        engine = ExtendedSynchronousEngine(
            make_processes(), schedule, t=t, rng=rng.spawn("engine"), trace=False
        )
        result = engine.run()
        s = decision_skew(result)
        skews.append(float(s))
        bounded = bounded and s <= result.f
    return SkewProfile(
        adversary=adversary_name or type(adversary).__name__,
        n=n,
        runs=seeds,
        skew=summarize(skews),
        max_skew=int(max(skews)),
        skew_bounded_by_f=bounded,
    )

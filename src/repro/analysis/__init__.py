"""Closed-form formulas and run-trace analytics."""

from repro.analysis.formulas import (
    classic_time,
    crossover_d,
    crw_best_bits,
    crw_best_messages,
    crw_round_bound,
    crw_worst_bits_bound,
    crw_worst_messages_bound,
    early_stopping_round_bound,
    extended_time,
    ffd_time_bound,
    floodset_rounds,
    simulation_blowup,
)
from repro.analysis.simultaneity import SkewProfile, decision_skew, skew_profile
from repro.analysis.traces import (
    RoundTraffic,
    decision_timeline,
    drop_audit,
    traffic_by_round,
    verify_pipelining_invariant,
)

__all__ = [
    "classic_time",
    "crossover_d",
    "crw_best_bits",
    "crw_best_messages",
    "crw_round_bound",
    "crw_worst_bits_bound",
    "crw_worst_messages_bound",
    "early_stopping_round_bound",
    "extended_time",
    "ffd_time_bound",
    "floodset_rounds",
    "simulation_blowup",
    "SkewProfile",
    "decision_skew",
    "skew_profile",
    "RoundTraffic",
    "decision_timeline",
    "drop_audit",
    "traffic_by_round",
    "verify_pipelining_invariant",
]

"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything originating here with a single ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate normally.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ModelViolationError",
    "SpecViolationError",
    "SimulationError",
    "ExplorationBudgetExceeded",
]


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class ConfigurationError(ReproError, ValueError):
    """Invalid parameters (e.g. ``t >= n``, empty process set, bad seed)."""


class ModelViolationError(ReproError):
    """An algorithm broke a rule of the computation model.

    Examples: a classic-model process tried to send a control message; a
    process attempted to send after deciding; a data message addressed to an
    unknown process id.
    """


class SpecViolationError(ReproError):
    """A run violated the consensus specification.

    Raised by :mod:`repro.sync.spec` checkers when validity, uniform
    agreement, termination, or a round bound does not hold.  The offending
    run's summary is embedded in the message to make failures actionable.
    """


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state.

    This always indicates a bug in the engine (or a hand-built schedule that
    references rounds/processes that cannot exist), never user input.
    """


class ExplorationBudgetExceeded(ReproError):
    """The lower-bound explorer exceeded its configured node/time budget."""

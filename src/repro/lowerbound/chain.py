"""Bivalency chains — the Aguilera–Toueg proof mechanism, executable.

Theorem 3's proof (after [2]) runs in two steps:

1. some initial configuration is *bivalent* (both decision values reachable
   in extensions), and
2. from a bivalent configuration, an adversary crashing **at most one
   process per round** can always reach a configuration at the next round
   that is still bivalent — as long as it has crashes left.

Chaining (2) for ``t`` rounds keeps the outcome undetermined through round
``t``, so no algorithm can have everyone decided by then: deciding in a
bivalent configuration means some extension contradicts you.

:func:`extend_bivalent_chain` performs exactly that construction for a
concrete algorithm: starting from a (given or discovered) bivalent initial
configuration it greedily picks, round by round, an adversary action (no
crash, or one crash with an explicit subset/prefix) whose successor
configuration remains bivalent — valency being computed by exhaustive
exploration of the remainder.  The returned chain is the proof's skeleton
made out of real process states:

* for the paper's (correct) algorithm the chain runs through round
  ``t - 1`` — exactly the reach of Aguilera–Toueg's induction; their
  round-``t`` finale is a separate case analysis, not a bivalence claim,
  and indeed every round-``t`` successor here is univalent;
* for a too-fast algorithm the chain survives *past its decision
  deadline*: a configuration in which everyone has decided cannot be
  bivalent, so bivalence after the deadline round certifies that
  conflicting decisions already occurred below — these are precisely the
  disagreement runs E4 reports.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.errors import ConfigurationError
from repro.lowerbound.explorer import ExplorationConfig, Explorer
from repro.net.accounting import MessageStats
from repro.sync.api import SyncProcess
from repro.sync.crash import CrashEvent, CrashPoint
from repro.sync.engine import execute_round
from repro.util.trace import Trace

__all__ = ["ChainStep", "ChainReport", "extend_bivalent_chain"]


@dataclass(frozen=True, slots=True)
class ChainStep:
    """One round of the chain: the adversary action that kept bivalence."""

    round_no: int
    action: tuple[CrashEvent, ...]
    reachable_after: frozenset


@dataclass(frozen=True, slots=True)
class ChainReport:
    """The constructed chain."""

    proposals: tuple[Any, ...]
    initial_reachable: frozenset
    steps: tuple[ChainStep, ...]
    final_reachable: frozenset

    @property
    def length(self) -> int:
        """Rounds through which bivalence was maintained."""
        return len(self.steps)

    @property
    def initially_bivalent(self) -> bool:
        return len(self.initial_reachable) >= 2


@dataclass
class _State:
    procs: dict[int, SyncProcess]
    active: set[int]
    crashes_used: int
    decided_values: set
    round_no: int


def _reachable_values(state: _State, cfg: ExplorationConfig) -> frozenset:
    """Exhaustive valency of a mid-run configuration (prefix decisions included)."""
    out: set = set(state.decided_values)
    stack = [state]
    while stack:
        node = stack.pop()
        if not node.active or node.round_no >= cfg.max_rounds:
            out |= node.decided_values
            continue
        scratch = copy.deepcopy(node.procs)
        plans = {}
        n = next(iter(node.procs.values())).n
        for pid in sorted(node.active):
            plan = scratch[pid].send_phase(node.round_no + 1)
            plans[pid] = (tuple(sorted(plan.data.keys())), plan.control)
        for combo in _actions(node, plans, cfg):
            child = _apply(node, combo)
            stack.append(child)
    return frozenset(out)


def _actions(
    node: _State,
    plans: Mapping[int, tuple[tuple[int, ...], tuple[int, ...]]],
    cfg: ExplorationConfig,
):
    yield ()
    if node.crashes_used >= cfg.max_crashes:
        return
    cap = min(cfg.max_crashes_per_round, cfg.max_crashes - node.crashes_used)
    victims = sorted(node.active)
    for count in range(1, cap + 1):
        for group in itertools.combinations(victims, count):
            pools = [
                list(
                    Explorer._victim_actions(
                        pid, node.round_no + 1, plans[pid][0], plans[pid][1]
                    )
                )
                for pid in group
            ]
            yield from itertools.product(*pools)


def _apply(node: _State, combo: tuple[CrashEvent, ...]) -> _State:
    child = _State(
        procs=copy.deepcopy(node.procs),
        active=set(node.active),
        crashes_used=node.crashes_used + len(combo),
        decided_values=set(node.decided_values),
        round_no=node.round_no + 1,
    )
    outcome = execute_round(
        child.procs,
        child.active,
        child.round_no,
        {ev.pid: ev for ev in combo},
        allow_control=True,
        stats=MessageStats(),
        trace=Trace(enabled=False),
        rng=None,
    )
    for pid in outcome.resolved_crashes:
        child.active.discard(pid)
    for pid, value in outcome.new_decisions.items():
        child.decided_values.add(value)
        child.active.discard(pid)
    return child


def extend_bivalent_chain(
    factory: Callable[[], Mapping[int, SyncProcess]],
    config: ExplorationConfig,
) -> ChainReport:
    """Greedily build the longest bivalence-preserving chain.

    ``factory`` must produce processes whose proposals make the initial
    configuration bivalent under ``config`` (use
    :func:`repro.lowerbound.valency.find_bivalent_initial` to discover
    one); a univalent start yields an empty chain.
    """
    root_procs = dict(factory())
    if not root_procs:
        raise ConfigurationError("factory produced no processes")
    proposals = tuple(
        getattr(root_procs[pid], "proposal", None) for pid in sorted(root_procs)
    )
    state = _State(
        procs=root_procs,
        active=set(root_procs),
        crashes_used=0,
        decided_values=set(),
        round_no=0,
    )
    initial = _reachable_values(state, config)
    steps: list[ChainStep] = []
    current = initial

    while len(current) >= 2 and state.round_no < config.max_rounds and state.active:
        scratch = copy.deepcopy(state.procs)
        plans = {}
        for pid in sorted(state.active):
            plan = scratch[pid].send_phase(state.round_no + 1)
            plans[pid] = (tuple(sorted(plan.data.keys())), plan.control)
        chosen: tuple[CrashEvent, ...] | None = None
        chosen_state: _State | None = None
        chosen_reach: frozenset | None = None
        for combo in _actions(state, plans, config):
            child = _apply(state, combo)
            # Values decided during this very round are locked into every
            # extension, so they belong to the child's reachable set.
            reach = _reachable_values(child, config)
            if len(reach) >= 2:
                chosen, chosen_state, chosen_reach = combo, child, reach
                break
        if chosen is None:
            break
        state = chosen_state
        current = chosen_reach
        steps.append(
            ChainStep(
                round_no=state.round_no,
                action=chosen,
                reachable_after=chosen_reach,
            )
        )

    return ChainReport(
        proposals=proposals,
        initial_reachable=initial,
        steps=tuple(steps),
        final_reachable=current,
    )

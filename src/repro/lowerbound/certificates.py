"""Worst-case certificates: explicit runs realizing the bounds.

Three executable statements about the paper's bounds:

1. :func:`worst_case_schedule` / :func:`certify_f_plus_one` — the
   coordinator-cascade run that forces the Figure-1 algorithm to spend
   exactly ``f + 1`` rounds (tightness of Theorem 1, and the matching-run
   half of Theorem 5's optimality).
2. :func:`certify_no_run_exceeds` — exhaustively verifies (small ``n``)
   that *no* adversary, however it picks crash rounds, subsets, and
   prefixes, pushes the algorithm past ``f + 1`` rounds (the other half of
   Theorem 1).
3. :func:`refute_round_bound` — for a *claimed* ``k``-round algorithm
   (``k <= t``), finds a concrete violating run, which is what Theorems 3
   and 4 assert must exist.  Applied to ``TruncatedCRW(k)`` this turns the
   impossibility proof into a failing test case with a replayable
   schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.lowerbound.explorer import (
    ExplorationConfig,
    ExplorationReport,
    Explorer,
    LeafOutcome,
)
from repro.sync.api import SyncProcess
from repro.sync.crash import CrashEvent, CrashPoint, CrashSchedule
from repro.sync.crash import Subset

__all__ = [
    "worst_case_schedule",
    "certify_f_plus_one",
    "certify_no_run_exceeds",
    "refute_round_bound",
    "Certificate",
]


@dataclass(frozen=True, slots=True)
class Certificate:
    """A verified statement plus the run(s) witnessing it."""

    statement: str
    holds: bool
    witness: LeafOutcome | None = None
    leaves_checked: int = 0


def worst_case_schedule(f: int) -> CrashSchedule:
    """The coordinator cascade: ``p_r`` dies in round ``r`` delivering
    nothing, for ``r = 1..f`` (the paper's Lemma-3 worst case)."""
    if f < 0:
        raise ConfigurationError("f must be >= 0")
    return CrashSchedule(
        CrashEvent(r, r, CrashPoint.DURING_DATA, data_policy=Subset.NONE)
        for r in range(1, f + 1)
    )


def certify_f_plus_one(
    factory: Callable[[], Sequence[SyncProcess]],
    f: int,
    *,
    t: int | None = None,
) -> Certificate:
    """Run the cascade and certify the decision lands exactly at ``f + 1``."""
    from repro.sync.extended import ExtendedSynchronousEngine
    from repro.sync.spec import check_consensus

    procs = list(factory())
    n = procs[0].n
    engine = ExtendedSynchronousEngine(
        procs, worst_case_schedule(f), t=t if t is not None else n - 1
    )
    result = engine.run()
    spec = check_consensus(result, require_early_stopping=True)
    tight = result.last_decision_round == f + 1 and result.f == f
    leaf = LeafOutcome(
        decisions=tuple(
            (pid, o.decision, o.decided_round)
            for pid, o in sorted(result.outcomes.items())
            if o.decided
        ),
        crashed=tuple(
            (pid, o.crashed_round)
            for pid, o in sorted(result.outcomes.items())
            if o.crashed
        ),
        rounds=result.rounds_executed,
        completed=result.completed,
        schedule=tuple(worst_case_schedule(f).events.values()),
        violations=spec.violations,
    )
    return Certificate(
        statement=f"coordinator cascade forces last decision at round f+1 = {f + 1}",
        holds=spec.ok and tight,
        witness=leaf,
        leaves_checked=1,
    )


def certify_no_run_exceeds(
    factory: Callable[[], Mapping[int, SyncProcess]],
    *,
    max_crashes: int,
    max_crashes_per_round: int | None = None,
    max_rounds: int | None = None,
    node_budget: int = 2_000_000,
) -> Certificate:
    """Exhaustively verify ``last decision <= f + 1`` over *all* runs.

    ``f`` here is per-run (the leaf's actual crash count), so this is the
    early-stopping statement of Theorem 1, not just the ``t + 1`` one.
    """
    per_round = max_crashes_per_round or max_crashes
    config = ExplorationConfig(
        max_crashes=max_crashes,
        max_crashes_per_round=per_round,
        max_rounds=max_rounds if max_rounds is not None else max_crashes + 2,
        node_budget=node_budget,
    )
    report = Explorer(factory, config).explore()
    holds = report.ok and report.early_stopping_holds
    return Certificate(
        statement="no adversary pushes any decision past round f+1",
        holds=holds,
        witness=report.worst_excess_leaf or report.worst_leaf,
        leaves_checked=report.leaves,
    )


def refute_round_bound(
    factory: Callable[[], Mapping[int, SyncProcess]],
    *,
    max_crashes: int,
    max_rounds: int,
    one_crash_per_round: bool = True,
    node_budget: int = 2_000_000,
) -> Certificate:
    """Find a violating run of a claimed ``k``-round algorithm.

    Theorems 3/4 say such a run must exist whenever the claimed bound is
    at most ``t`` (resp. ``f``); the returned certificate carries the
    concrete crash schedule that exhibits it.
    """
    config = ExplorationConfig(
        max_crashes=max_crashes,
        max_crashes_per_round=1 if one_crash_per_round else max_crashes,
        max_rounds=max_rounds,
        node_budget=node_budget,
    )
    report = Explorer(factory, config).explore()
    witness = report.violating_leaves[0] if report.violating_leaves else None
    return Certificate(
        statement=(
            "a run violating uniform consensus exists for the claimed "
            f"{max_rounds}-round algorithm"
        ),
        holds=witness is not None,
        witness=witness,
        leaves_checked=report.leaves,
    )

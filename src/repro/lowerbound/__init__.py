"""Lower-bound machinery: exhaustive adversary, valency, certificates."""

from repro.lowerbound.chain import ChainReport, ChainStep, extend_bivalent_chain
from repro.lowerbound.certificates import (
    Certificate,
    certify_f_plus_one,
    certify_no_run_exceeds,
    refute_round_bound,
    worst_case_schedule,
)
from repro.lowerbound.explorer import (
    ExplorationConfig,
    ExplorationReport,
    Explorer,
    LeafOutcome,
)
from repro.lowerbound.valency import (
    ValencyReport,
    find_bivalent_initial,
    initial_valency,
    valency_spectrum,
)

__all__ = [
    "ChainReport",
    "ChainStep",
    "extend_bivalent_chain",
    "Certificate",
    "certify_f_plus_one",
    "certify_no_run_exceeds",
    "refute_round_bound",
    "worst_case_schedule",
    "ExplorationConfig",
    "ExplorationReport",
    "Explorer",
    "LeafOutcome",
    "ValencyReport",
    "find_bivalent_initial",
    "initial_valency",
    "valency_spectrum",
]

"""Exhaustive branching adversary over extended-model runs.

The lower-bound proofs (Theorems 3–5) quantify over *runs*: for every
algorithm that claims to decide within ``t`` rounds there exists a run —
built round by round by an adversary choosing who crashes, which subset of
data messages escapes, and how long the delivered control prefix is — that
breaks it.  For small systems the run tree is finite, so the quantifier is
checkable by enumeration.  This module walks that tree.

The explorer drives deep-copied process states through
:func:`repro.sync.engine.execute_round`, branching over every adversary
choice:

* which live processes crash this round (within a total budget ``t`` and a
  per-round cap — Theorem 3 uses "at most one crash per round");
* for each victim, every *distinct* resolved outcome: the data-subset
  lattice (all ``2^k`` subsets of the actually-planned destinations) and
  every control prefix ``0..len`` (both collapsed so that e.g.
  BEFORE_SEND and DURING_DATA-with-empty-subset are explored once).

Leaves are complete runs (everyone decided or crashed) or runs truncated
at ``max_rounds``.  Each leaf is checked against uniform consensus and the
observed decision rounds are aggregated, so one exploration answers both
"is there a violating run?" (with a replayable
:class:`~repro.sync.crash.CrashSchedule` certificate) and "what is the
worst-case decision round?".
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.errors import ConfigurationError, ExplorationBudgetExceeded
from repro.net.accounting import MessageStats
from repro.sync.api import SyncProcess
from repro.sync.crash import CrashEvent, CrashPoint, CrashSchedule
from repro.sync.engine import execute_round
from repro.sync.result import ProcessOutcome, RunResult
from repro.util.trace import Trace


def _instance_state(obj: Any) -> dict[str, Any]:
    """All instance attributes of ``obj``, whether dict- or slot-stored.

    Process classes may declare ``__slots__`` (the engines' fast path);
    the dedupe fingerprint must see their state either way.
    """
    state = dict(getattr(obj, "__dict__", None) or {})
    for cls in type(obj).__mro__:
        for name in getattr(cls, "__slots__", ()):
            if name not in state and hasattr(obj, name):
                state[name] = getattr(obj, name)
    return state

__all__ = ["ExplorationConfig", "LeafOutcome", "ExplorationReport", "Explorer"]


@dataclass(frozen=True)
class ExplorationConfig:
    """Adversary powers and exploration budgets.

    ``dedupe=True`` prunes configurations whose *observable state* (round,
    per-process internal state, decisions, crash budget used) has been
    visited before: identical states have identical subtrees, so pruning
    changes node counts and leaf multiplicities but not reachability of
    violations, decisions, or worst rounds (verified by the equivalence
    tests).  Leaf-count-sensitive consumers should keep the default.
    """

    max_crashes: int  # total crash budget (the model's t)
    max_crashes_per_round: int = 1  # Theorem 3's "at most one per round"
    max_rounds: int = 8
    node_budget: int = 2_000_000  # round-executions before giving up
    check_uniform: bool = True
    dedupe: bool = False

    def __post_init__(self) -> None:
        if self.max_crashes < 0 or self.max_crashes_per_round < 1:
            raise ConfigurationError("bad crash budgets")
        if self.max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")


@dataclass(frozen=True, slots=True)
class LeafOutcome:
    """One fully explored run."""

    decisions: tuple[tuple[int, Any, int], ...]  # (pid, value, round)
    crashed: tuple[tuple[int, int], ...]  # (pid, round)
    rounds: int
    completed: bool
    schedule: tuple[CrashEvent, ...]  # replayable adversary certificate
    violations: tuple[str, ...]

    @property
    def f(self) -> int:
        return len(self.crashed)

    @property
    def last_decision_round(self) -> int:
        return max((r for _, _, r in self.decisions), default=0)

    @property
    def decided_values(self) -> frozenset:
        return frozenset(v for _, v, _ in self.decisions)


@dataclass(slots=True)
class ExplorationReport:
    """Aggregate over every leaf of the run tree."""

    leaves: int = 0
    nodes: int = 0
    violating_leaves: list[LeafOutcome] = field(default_factory=list)
    worst_last_decision_round: int = 0
    worst_leaf: LeafOutcome | None = None
    # Early-stopping view: max of (last decision round) - (f + 1) per leaf,
    # i.e. > 0 iff some run decides later than its own crash count allows.
    worst_early_stopping_excess: int = -(10**9)
    worst_excess_leaf: LeafOutcome | None = None
    reachable_decisions: set = field(default_factory=set)
    incomplete_leaves: int = 0
    max_violations_kept: int = 10

    @property
    def ok(self) -> bool:
        """No violating leaf found anywhere in the tree."""
        return not self.violating_leaves and self.incomplete_leaves == 0

    @property
    def early_stopping_holds(self) -> bool:
        """Every run decided by round f + 1 (its own f)."""
        return self.worst_early_stopping_excess <= 0

    def absorb(self, leaf: LeafOutcome) -> None:
        self.leaves += 1
        self.reachable_decisions |= set(leaf.decided_values)
        if leaf.last_decision_round > self.worst_last_decision_round:
            self.worst_last_decision_round = leaf.last_decision_round
            self.worst_leaf = leaf
        if leaf.decisions:
            excess = leaf.last_decision_round - (leaf.f + 1)
            if excess > self.worst_early_stopping_excess:
                self.worst_early_stopping_excess = excess
                self.worst_excess_leaf = leaf
        if not leaf.completed:
            self.incomplete_leaves += 1
        if leaf.violations and len(self.violating_leaves) < self.max_violations_kept:
            self.violating_leaves.append(leaf)


@dataclass
class _Node:
    """Mutable exploration state (copied on branch)."""

    procs: dict[int, SyncProcess]
    active: set[int]
    crashed: dict[int, int]  # pid -> round
    decisions: dict[int, tuple[Any, int]]  # pid -> (value, round)
    round_no: int
    schedule: tuple[CrashEvent, ...]


class Explorer:
    """Exhaustive adversary search for one algorithm instantiation.

    ``factory`` builds a fresh ``{pid: process}`` mapping for the root; it
    is called once and the explorer deep-copies states along branches, so
    processes must be ``deepcopy``-able (all the library's are).
    """

    def __init__(
        self,
        factory: Callable[[], Mapping[int, SyncProcess]],
        config: ExplorationConfig,
    ) -> None:
        self.factory = factory
        self.config = config
        root = dict(factory())
        if not root:
            raise ConfigurationError("factory produced no processes")
        self.n = next(iter(root.values())).n
        if sorted(root) != list(range(1, self.n + 1)):
            raise ConfigurationError("factory pids must be 1..n")
        self._root = root

    # -- adversary choice enumeration ---------------------------------------

    @staticmethod
    def _victim_actions(
        pid: int, round_no: int, planned_data: tuple[int, ...], planned_control: tuple[int, ...]
    ) -> Iterator[CrashEvent]:
        """Every observably distinct crash of ``pid`` in this round."""
        seen: set[tuple[frozenset[int], int]] = set()
        # Data-step crashes: all subsets, no control delivered.
        for k in range(len(planned_data) + 1):
            for combo in itertools.combinations(planned_data, k):
                key = (frozenset(combo), 0)
                if key not in seen:
                    seen.add(key)
                    yield CrashEvent(
                        pid,
                        round_no,
                        CrashPoint.DURING_DATA,
                        data_subset=frozenset(combo),
                    )
        # Control-step crashes: full data, every prefix (AFTER_SEND is the
        # full-prefix case but additionally suppresses nothing more, so it
        # is observationally the prefix == len case; both deliver all).
        for prefix in range(len(planned_control) + 1):
            key = (frozenset(planned_data), prefix)
            if key not in seen:
                seen.add(key)
                yield CrashEvent(
                    pid,
                    round_no,
                    CrashPoint.DURING_CONTROL,
                    control_prefix=prefix,
                )

    def _round_choices(
        self, node: _Node, plans: Mapping[int, tuple[tuple[int, ...], tuple[int, ...]]]
    ) -> Iterator[tuple[CrashEvent, ...]]:
        """Every crash combination for this round (including none)."""
        yield ()
        budget_left = self.config.max_crashes - len(node.crashed)
        if budget_left <= 0:
            return
        cap = min(self.config.max_crashes_per_round, budget_left)
        victims = sorted(node.active)
        for count in range(1, cap + 1):
            for group in itertools.combinations(victims, count):
                pools = [
                    list(
                        self._victim_actions(
                            pid, node.round_no + 1, plans[pid][0], plans[pid][1]
                        )
                    )
                    for pid in group
                ]
                for combo in itertools.product(*pools):
                    yield combo

    # -- tree walk -------------------------------------------------------------

    @staticmethod
    def _state_key(node: "_Node") -> tuple:
        """Observable-state fingerprint for dedupe pruning.

        Two nodes with equal keys have identical futures: the engine is
        deterministic in (process states, active set, round number), and
        the adversary's remaining power depends only on the crash budget
        used.  Decisions are part of the key because leaves report them.
        """
        procs_state = tuple(
            (pid, repr(sorted(_instance_state(node.procs[pid]).items())))
            for pid in sorted(node.procs)
        )
        return (
            node.round_no,
            frozenset(node.active),
            len(node.crashed),
            tuple(sorted(node.decisions.items())),
            procs_state,
        )

    def explore(self) -> ExplorationReport:
        """Walk the whole run tree; raises on budget exhaustion."""
        report = ExplorationReport()
        root = _Node(
            procs=copy.deepcopy(self._root),
            active=set(range(1, self.n + 1)),
            crashed={},
            decisions={},
            round_no=0,
            schedule=(),
        )
        stack = [root]
        seen: set[tuple] = set()
        while stack:
            node = stack.pop()
            if self.config.dedupe:
                key = self._state_key(node)
                if key in seen:
                    continue
                seen.add(key)
            if not node.active or node.round_no >= self.config.max_rounds:
                report.absorb(self._leaf(node))
                continue
            # Plans are a pure function of process state: compute once per
            # node on a scratch copy (send_phase must not mutate, but stay
            # defensive about future algorithms).
            scratch = copy.deepcopy(node.procs)
            plans = {}
            for pid in sorted(node.active):
                plan = scratch[pid].send_phase(node.round_no + 1)
                plan.validate(pid, self.n, allow_control=True)
                plans[pid] = (tuple(sorted(plan.data.keys())), plan.control)
            for crash_combo in self._round_choices(node, plans):
                report.nodes += 1
                if report.nodes > self.config.node_budget:
                    raise ExplorationBudgetExceeded(
                        f"node budget {self.config.node_budget} exceeded "
                        f"(leaves so far: {report.leaves})"
                    )
                child = _Node(
                    procs=copy.deepcopy(node.procs),
                    active=set(node.active),
                    crashed=dict(node.crashed),
                    decisions=dict(node.decisions),
                    round_no=node.round_no + 1,
                    schedule=node.schedule + crash_combo,
                )
                outcome = execute_round(
                    child.procs,
                    child.active,
                    child.round_no,
                    {ev.pid: ev for ev in crash_combo},
                    allow_control=True,
                    stats=MessageStats(),
                    trace=Trace(enabled=False),
                    rng=None,
                )
                for pid in outcome.resolved_crashes:
                    child.crashed[pid] = child.round_no
                    child.active.discard(pid)
                for pid, value in outcome.new_decisions.items():
                    child.decisions[pid] = (value, child.round_no)
                    child.active.discard(pid)
                stack.append(child)
        return report

    # -- leaf evaluation ----------------------------------------------------------

    def _leaf(self, node: _Node) -> LeafOutcome:
        result = self._as_run_result(node)
        from repro.sync.spec import check_consensus

        spec = check_consensus(result, uniform=self.config.check_uniform)
        return LeafOutcome(
            decisions=tuple(
                (pid, v, r) for pid, (v, r) in sorted(node.decisions.items())
            ),
            crashed=tuple(sorted(node.crashed.items())),
            rounds=node.round_no,
            completed=not node.active,
            schedule=node.schedule,
            violations=spec.violations,
        )

    def _as_run_result(self, node: _Node) -> RunResult:
        outcomes = {}
        for pid, proc in node.procs.items():
            value_round = node.decisions.get(pid)
            outcomes[pid] = ProcessOutcome(
                pid=pid,
                proposal=getattr(proc, "proposal", None),
                decided=value_round is not None,
                decision=value_round[0] if value_round else None,
                decided_round=value_round[1] if value_round else 0,
                crashed=pid in node.crashed,
                crashed_round=node.crashed.get(pid, 0),
            )
        return RunResult(
            n=self.n,
            t=self.config.max_crashes,
            model="extended",
            outcomes=outcomes,
            rounds_executed=node.round_no,
            completed=not node.active,
            stats=MessageStats(),
            trace=Trace(enabled=False),
        )

"""Valency analysis — the vocabulary of the Theorem 3 proof, executable.

Aguilera–Toueg's bivalency proof (which Theorem 3 transplants into the
extended model) revolves around the *valency* of a configuration: the set
of values decidable in some extension of it.  A configuration is

* **bivalent** if two different values are still reachable,
* **univalent** (0-valent / 1-valent) if only one is.

The proof shows (1) some initial configuration of any algorithm is
bivalent, and (2) a too-fast algorithm lets the adversary keep a bivalent
configuration alive one round per crash — contradiction with deciding.

With the exhaustive :class:`~repro.lowerbound.explorer.Explorer` the
valency of an *initial* configuration is directly computable: it is the
set of reachable decisions over the whole run tree.  The helpers here
package that computation and the paper's two observations:

* :func:`initial_valency` — valency of one proposal vector;
* :func:`find_bivalent_initial` — search proposal vectors for a bivalent
  one (exists whenever proposals are not all equal and ``t >= 1``, the
  premise of step (1));
* :func:`valency_spectrum` — valency of every binary proposal vector, the
  data behind the E4 report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.lowerbound.explorer import ExplorationConfig, Explorer
from repro.sync.api import SyncProcess

__all__ = [
    "ValencyReport",
    "initial_valency",
    "find_bivalent_initial",
    "valency_spectrum",
]

ProcessFactory = Callable[[Sequence[Any]], Mapping[int, SyncProcess]]


@dataclass(frozen=True, slots=True)
class ValencyReport:
    """Valency of one initial configuration."""

    proposals: tuple[Any, ...]
    reachable: frozenset
    leaves: int

    @property
    def bivalent(self) -> bool:
        return len(self.reachable) >= 2

    @property
    def univalent(self) -> bool:
        return len(self.reachable) == 1


def initial_valency(
    factory: ProcessFactory,
    proposals: Sequence[Any],
    config: ExplorationConfig,
) -> ValencyReport:
    """Compute the decision values reachable from this initial configuration."""
    report = Explorer(lambda: factory(proposals), config).explore()
    return ValencyReport(
        proposals=tuple(proposals),
        reachable=frozenset(report.reachable_decisions),
        leaves=report.leaves,
    )


def find_bivalent_initial(
    factory: ProcessFactory,
    n: int,
    config: ExplorationConfig,
    values: tuple[Any, Any] = (0, 1),
) -> ValencyReport | None:
    """First bivalent binary initial configuration, or None.

    Scans proposal vectors in lexicographic order, skipping the two
    constant vectors (validity forces them univalent for any algorithm).
    """
    lo, hi = values
    for mask in range(1, 2**n - 1):
        proposals = [hi if mask & (1 << (pid - 1)) else lo for pid in range(1, n + 1)]
        report = initial_valency(factory, proposals, config)
        if report.bivalent:
            return report
    return None


def valency_spectrum(
    factory: ProcessFactory,
    n: int,
    config: ExplorationConfig,
    values: tuple[Any, Any] = (0, 1),
) -> list[ValencyReport]:
    """Valency of every binary proposal vector (2^n entries)."""
    lo, hi = values
    out = []
    for mask in range(2**n):
        proposals = [hi if mask & (1 << (pid - 1)) else lo for pid in range(1, n + 1)]
        out.append(initial_valency(factory, proposals, config))
    return out

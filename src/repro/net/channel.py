"""Reliable FIFO channels.

The synchronous engines do not need explicit channel objects (round
semantics subsume them), but the asynchronous simulator and the
Chandy–Lamport snapshot substrate do: markers separate the messages sent
before them from those sent after *on each channel*, which is only
meaningful with per-channel FIFO order.

A :class:`FifoChannel` is reliable (no loss, duplication, creation or
alteration — the paper's communication assumption) and ordered.  The
:class:`ChannelNetwork` owns the full ``n × (n-1)`` directed channel matrix
and maintains a nonempty-channel index, so :meth:`ChannelNetwork.nonempty`
and :meth:`ChannelNetwork.total_in_transit` cost O(loaded channels) and
O(1) instead of scanning all ``n(n-1)`` channels per call — the difference
between O(events) and O(events · n²) for an event-driven consumer polling
the network between steps.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.errors import ConfigurationError, SimulationError
from repro.net.message import Message

__all__ = ["FifoChannel", "ChannelNetwork"]


class FifoChannel:
    """One directed, reliable, FIFO channel ``sender -> dest``."""

    __slots__ = ("sender", "dest", "_queue", "delivered_count", "_on_change")

    def __init__(self, sender: int, dest: int) -> None:
        if sender == dest:
            raise ConfigurationError("no self-channels in the model")
        self.sender = sender
        self.dest = dest
        self._queue: deque[Message] = deque()
        self.delivered_count = 0
        #: Owner hook called with (channel, delta) after every queue change;
        #: :class:`ChannelNetwork` uses it to keep its occupancy index
        #: correct even when callers hold the channel object directly.
        self._on_change: Callable[[FifoChannel, int], None] | None = None

    def send(self, msg: Message) -> None:
        """Append ``msg`` to the channel (tail)."""
        if msg.sender != self.sender or msg.dest != self.dest:
            raise SimulationError(
                f"message {msg} enqueued on channel {self.sender}->{self.dest}"
            )
        self._queue.append(msg)
        if self._on_change is not None:
            self._on_change(self, 1)

    def deliver(self) -> Message:
        """Pop and return the head message (FIFO)."""
        if not self._queue:
            raise SimulationError(f"deliver() on empty channel {self.sender}->{self.dest}")
        self.delivered_count += 1
        msg = self._queue.popleft()
        if self._on_change is not None:
            self._on_change(self, -1)
        return msg

    def peek(self) -> Message | None:
        """Head message without removing it, or ``None`` if empty."""
        return self._queue[0] if self._queue else None

    @property
    def in_transit(self) -> tuple[Message, ...]:
        """Snapshot of the messages currently in the channel, head first."""
        return tuple(self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)


class ChannelNetwork:
    """The complete directed channel matrix over processes ``1..n``."""

    def __init__(self, n: int) -> None:
        if n < 2:
            raise ConfigurationError(f"a network needs >= 2 processes, got n={n}")
        self.n = n
        self._channels: dict[tuple[int, int], FifoChannel] = {
            (i, j): FifoChannel(i, j)
            for i in range(1, n + 1)
            for j in range(1, n + 1)
            if i != j
        }
        # Occupancy index, maintained through the channels' change hook so
        # it stays correct however a channel is driven (via the network or
        # a directly held FifoChannel).
        self._nonempty: set[tuple[int, int]] = set()
        self._in_transit = 0
        for channel in self._channels.values():
            channel._on_change = self._channel_changed

    def _channel_changed(self, channel: FifoChannel, delta: int) -> None:
        self._in_transit += delta
        key = (channel.sender, channel.dest)
        if channel._queue:
            self._nonempty.add(key)
        else:
            self._nonempty.discard(key)

    def channel(self, sender: int, dest: int) -> FifoChannel:
        """The directed channel ``sender -> dest``."""
        try:
            return self._channels[(sender, dest)]
        except KeyError:
            raise ConfigurationError(
                f"no channel {sender}->{dest} in a {self.n}-process network"
            ) from None

    def send(self, msg: Message) -> None:
        """Route ``msg`` onto its channel."""
        self.channel(msg.sender, msg.dest).send(msg)

    def incoming(self, dest: int) -> list[FifoChannel]:
        """All channels into ``dest``, ordered by sender id."""
        return [self._channels[(i, dest)] for i in range(1, self.n + 1) if i != dest]

    def outgoing(self, sender: int) -> list[FifoChannel]:
        """All channels out of ``sender``, ordered by destination id."""
        return [self._channels[(sender, j)] for j in range(1, self.n + 1) if j != sender]

    def nonempty(self) -> list[FifoChannel]:
        """Channels currently holding at least one message.

        Served from the maintained index — O(loaded channels), not
        O(n²) — in the stable (sender, dest) order the full scan used to
        produce.
        """
        return [self._channels[key] for key in sorted(self._nonempty)]

    def total_in_transit(self) -> int:
        """Total queued messages across all channels (O(1), maintained)."""
        return self._in_transit

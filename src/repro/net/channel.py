"""Reliable FIFO channels.

The synchronous engines do not need explicit channel objects (round
semantics subsume them), but the asynchronous simulator and the
Chandy–Lamport snapshot substrate do: markers separate the messages sent
before them from those sent after *on each channel*, which is only
meaningful with per-channel FIFO order.

A :class:`FifoChannel` is reliable (no loss, duplication, creation or
alteration — the paper's communication assumption) and ordered.  The
:class:`ChannelNetwork` owns the full ``n × (n-1)`` directed channel matrix.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, SimulationError
from repro.net.message import Message

__all__ = ["FifoChannel", "ChannelNetwork"]


class FifoChannel:
    """One directed, reliable, FIFO channel ``sender -> dest``."""

    __slots__ = ("sender", "dest", "_queue", "delivered_count")

    def __init__(self, sender: int, dest: int) -> None:
        if sender == dest:
            raise ConfigurationError("no self-channels in the model")
        self.sender = sender
        self.dest = dest
        self._queue: deque[Message] = deque()
        self.delivered_count = 0

    def send(self, msg: Message) -> None:
        """Append ``msg`` to the channel (tail)."""
        if msg.sender != self.sender or msg.dest != self.dest:
            raise SimulationError(
                f"message {msg} enqueued on channel {self.sender}->{self.dest}"
            )
        self._queue.append(msg)

    def deliver(self) -> Message:
        """Pop and return the head message (FIFO)."""
        if not self._queue:
            raise SimulationError(f"deliver() on empty channel {self.sender}->{self.dest}")
        self.delivered_count += 1
        return self._queue.popleft()

    def peek(self) -> Message | None:
        """Head message without removing it, or ``None`` if empty."""
        return self._queue[0] if self._queue else None

    @property
    def in_transit(self) -> tuple[Message, ...]:
        """Snapshot of the messages currently in the channel, head first."""
        return tuple(self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)


class ChannelNetwork:
    """The complete directed channel matrix over processes ``1..n``."""

    def __init__(self, n: int) -> None:
        if n < 2:
            raise ConfigurationError(f"a network needs >= 2 processes, got n={n}")
        self.n = n
        self._channels: dict[tuple[int, int], FifoChannel] = {
            (i, j): FifoChannel(i, j)
            for i in range(1, n + 1)
            for j in range(1, n + 1)
            if i != j
        }

    def channel(self, sender: int, dest: int) -> FifoChannel:
        """The directed channel ``sender -> dest``."""
        try:
            return self._channels[(sender, dest)]
        except KeyError:
            raise ConfigurationError(
                f"no channel {sender}->{dest} in a {self.n}-process network"
            ) from None

    def send(self, msg: Message) -> None:
        """Route ``msg`` onto its channel."""
        self.channel(msg.sender, msg.dest).send(msg)

    def incoming(self, dest: int) -> list[FifoChannel]:
        """All channels into ``dest``, ordered by sender id."""
        return [self._channels[(i, dest)] for i in range(1, self.n + 1) if i != dest]

    def outgoing(self, sender: int) -> list[FifoChannel]:
        """All channels out of ``sender``, ordered by destination id."""
        return [self._channels[(sender, j)] for j in range(1, self.n + 1) if j != sender]

    def nonempty(self) -> list[FifoChannel]:
        """Channels currently holding at least one message."""
        return [c for c in self._channels.values() if c]

    def total_in_transit(self) -> int:
        """Total queued messages across all channels."""
        return sum(len(c) for c in self._channels.values())

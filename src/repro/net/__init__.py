"""Message substrate: payloads, messages, accounting, FIFO channels."""

from repro.net.accounting import MessageStats
from repro.net.channel import ChannelNetwork, FifoChannel
from repro.net.message import Message, MessageKind
from repro.net.payload import SizedValue, bit_size

__all__ = [
    "MessageStats",
    "ChannelNetwork",
    "FifoChannel",
    "Message",
    "MessageKind",
    "SizedValue",
    "bit_size",
]

"""Per-run message and bit accounting.

Theorem 2 (bit complexity) is reproduced by instrumenting every engine with
a :class:`MessageStats` sink.  Sends and deliveries are counted separately:
a message *sent* by a process that crashed mid-step may never be
*delivered*, and the paper's worst-case bound counts transmitted messages.

Two interfaces feed the counters:

* :meth:`MessageStats.on_send` / :meth:`MessageStats.on_deliver` take a
  materialized :class:`~repro.net.message.Message` (the traced path and
  the continuous-time simulators);
* :meth:`MessageStats.bulk_data` / :meth:`MessageStats.bulk_control`
  charge whole batches without any message objects — the synchronous
  fast path counts a round's traffic the way the paper's analysis does,
  in aggregate.  Both interfaces produce identical totals (pinned by
  ``tests/net/test_accounting.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.message import Message, MessageKind

__all__ = ["MessageStats"]


@dataclass(slots=True)
class MessageStats:
    """Mutable counters for one simulated run."""

    data_sent: int = 0
    data_delivered: int = 0
    control_sent: int = 0
    control_delivered: int = 0
    async_sent: int = 0
    async_delivered: int = 0
    marker_sent: int = 0
    marker_delivered: int = 0
    bits_sent: int = 0
    bits_delivered: int = 0

    def on_send(self, msg: Message) -> None:
        """Record a transmission attempt that reached the wire."""
        self._bump(msg, sent=True)

    def on_deliver(self, msg: Message) -> None:
        """Record a successful delivery."""
        self._bump(msg, sent=False)

    def _bump(self, msg: Message, sent: bool) -> None:
        bits = msg.bits()
        if sent:
            self.bits_sent += bits
        else:
            self.bits_delivered += bits
        if msg.kind is MessageKind.DATA:
            if sent:
                self.data_sent += 1
            else:
                self.data_delivered += 1
        elif msg.kind is MessageKind.CONTROL:
            if sent:
                self.control_sent += 1
            else:
                self.control_delivered += 1
        elif msg.kind is MessageKind.MARKER:
            if sent:
                self.marker_sent += 1
            else:
                self.marker_delivered += 1
        else:
            if sent:
                self.async_sent += 1
            else:
                self.async_delivered += 1

    # -- batch interface (allocation-free fast path) -----------------------

    def bulk_data(self, count: int, bits: int, *, delivered: bool = False) -> None:
        """Charge ``count`` DATA messages totalling ``bits`` in one call.

        Charges the sent counters by default; pass ``delivered=True`` for
        the delivered side (a delivered batch must also have been charged
        as sent, exactly like the per-message interface).
        """
        if delivered:
            self.data_delivered += count
            self.bits_delivered += bits
        else:
            self.data_sent += count
            self.bits_sent += bits

    def bulk_control(self, sent: int, delivered: int) -> None:
        """Charge a batch of CONTROL messages (exactly 1 bit each)."""
        self.control_sent += sent
        self.control_delivered += delivered
        self.bits_sent += sent
        self.bits_delivered += delivered

    def bulk_async(self, count: int, bits: int, *, delivered: bool = False) -> None:
        """Charge ``count`` ASYNC messages totalling ``bits`` in one call.

        Mirrors :meth:`bulk_data`: the asynchronous network sizes a
        payload once per send (or once per broadcast fan-out) and charges
        here instead of routing every message through :meth:`on_send` /
        :meth:`on_deliver`'s kind dispatch.
        """
        if delivered:
            self.async_delivered += count
            self.bits_delivered += bits
        else:
            self.async_sent += count
            self.bits_sent += bits

    # -- derived ----------------------------------------------------------

    @property
    def messages_sent(self) -> int:
        """Total messages that reached the wire, any kind."""
        return self.data_sent + self.control_sent + self.async_sent + self.marker_sent

    @property
    def messages_delivered(self) -> int:
        """Total messages delivered, any kind."""
        return (
            self.data_delivered
            + self.control_delivered
            + self.async_delivered
            + self.marker_delivered
        )

    def merge(self, other: "MessageStats") -> None:
        """Accumulate ``other`` into ``self`` (used by sweep aggregation)."""
        self.data_sent += other.data_sent
        self.data_delivered += other.data_delivered
        self.control_sent += other.control_sent
        self.control_delivered += other.control_delivered
        self.async_sent += other.async_sent
        self.async_delivered += other.async_delivered
        self.marker_sent += other.marker_sent
        self.marker_delivered += other.marker_delivered
        self.bits_sent += other.bits_sent
        self.bits_delivered += other.bits_delivered

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"data {self.data_sent}/{self.data_delivered} "
            f"ctrl {self.control_sent}/{self.control_delivered} "
            f"async {self.async_sent}/{self.async_delivered} "
            f"bits {self.bits_sent}/{self.bits_delivered} (sent/delivered)"
        )

"""Payload bit-sizing.

Theorem 2 of the paper counts bits: a DATA message costs ``|v|`` bits (the
proposed-value width) and a COMMIT message costs exactly **one** bit (a pure
signal; the paper notes a receiver distinguishes the two by size).  To
reproduce the bit-complexity table we need a deterministic bit size for
every payload the algorithms send.

:func:`bit_size` implements a conservative, documented encoding:

* ``None``                     → 0 bits (pure signal)
* ``bool``                     → 1 bit
* ``int``                      → max(1, bit_length) + 1 sign bit
* ``float``                    → 64 bits
* ``str`` / ``bytes``          → 8 bits per byte (UTF-8 for str)
* ``tuple`` / ``list``         → sum of elements + 8 bits length framing
* ``dict``                     → sum of key+value sizes + 8 bits framing
* objects with ``bit_size()``  → whatever they report

Algorithms may also send :class:`SizedValue` to model an application value
of a *fixed declared width* (e.g. "a 1024-bit proposal") irrespective of the
Python object used to carry it — this is what the E2 benchmark uses to sweep
``|v|``.

Sizing is memoized for *leaf* payloads (``bool``/``int``/``float``/``str``/
``bytes``/``None``) and hashable objects exposing ``bit_size()``: CRW-style
algorithms broadcast one identical payload to ``n - 1`` destinations every
round, so the hot path would otherwise recompute the same width n(n-1)
times per run.  The cache key pairs the value with its concrete type
because Python equates ``True == 1 == 1.0`` while the encoding above sizes
them differently.  Containers are *not* memoized — their equality compares
elements cross-type (``(1,) == (True,)``), which would let differently
sized payloads share a cache slot — but their elements still hit the leaf
cache.  Payloads are assumed immutable once sent (the
:class:`~repro.net.message.Message` contract); an unhashable payload falls
through to a direct computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any

from repro.errors import ConfigurationError

__all__ = ["bit_size", "SizedValue"]


@dataclass(frozen=True, slots=True)
class SizedValue:
    """A consensus value with an explicitly declared bit width.

    ``value`` is the logical payload (compared with ``==`` by algorithms);
    ``bits`` is the width charged by the accounting layer.
    """

    value: Any
    bits: int

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ConfigurationError(f"SizedValue width must be >= 1 bit, got {self.bits}")

    def bit_size(self) -> int:
        return self.bits

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.value}<{self.bits}b>"


def _bit_size_impl(payload: Any) -> int:
    """The actual encoding rules (uncached; see module docs)."""
    if payload is None:
        return 0
    size_method = getattr(payload, "bit_size", None)
    if callable(size_method):
        return int(size_method())
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, payload.bit_length()) + 1
    if isinstance(payload, float):
        return 64
    if isinstance(payload, str):
        return 8 * len(payload.encode("utf-8"))
    if isinstance(payload, bytes):
        return 8 * len(payload)
    if isinstance(payload, (tuple, list, frozenset, set)):
        return 8 + sum(bit_size(x) for x in payload)
    if isinstance(payload, dict):
        return 8 + sum(bit_size(k) + bit_size(v) for k, v in payload.items())
    raise ConfigurationError(
        f"cannot size payload of type {type(payload).__name__}; "
        "give it a bit_size() method or wrap it in SizedValue"
    )


@lru_cache(maxsize=4096)
def _bit_size_typed(tp: type, payload: Any) -> int:
    # `tp` is part of the key so True / 1 / 1.0 (equal, same hash) cannot
    # share a cache slot despite their different widths.
    return _bit_size_impl(payload)


#: Exact types whose (type, value) pair fully determines the bit size.
_LEAF_TYPES = frozenset({bool, int, float, str, bytes, type(None)})


def bit_size(payload: Any) -> int:
    """Number of bits charged for sending ``payload`` (see module docs)."""
    cls = payload.__class__
    if cls in _LEAF_TYPES:
        return _bit_size_typed(cls, payload)
    if callable(getattr(payload, "bit_size", None)):
        try:
            return _bit_size_typed(cls, payload)
        except TypeError:  # unhashable sized object
            return _bit_size_impl(payload)
    return _bit_size_impl(payload)

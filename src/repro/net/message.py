"""Message objects exchanged by simulated processes.

Two wire-level kinds exist in the paper's extended model:

* :attr:`MessageKind.DATA` — an application message sent in the *data step*;
  its content may depend on everything received in **previous** rounds.
* :attr:`MessageKind.CONTROL` — the 1-bit synchronization message sent in
  the *control step* along an ordered destination sequence.

The asynchronous simulator reuses the same class with ``MessageKind.ASYNC``
plus a protocol-level ``tag`` (e.g. ``"EST"``, ``"AUX"``, ``"DECIDE"``),
because asynchronous messages must carry their round number explicitly
(Section 4 of the paper points this out as a cost of asynchrony).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.net.payload import bit_size

__all__ = ["MessageKind", "Message", "ASYNC_HEADER_BITS", "async_bits"]

#: Wire overhead of one asynchronous message: a 32-bit round header plus
#: 8 bits of tag framing.  Asynchronous messages must carry their round
#: number explicitly — Section 4 of the paper counts this as an intrinsic
#: cost of asynchrony — so the header is charged on every ASYNC send.
ASYNC_HEADER_BITS = 32 + 8


def async_bits(payload: Any) -> int:
    """Wire cost of one ASYNC message carrying ``payload``.

    The single sizing authority for the asynchronous fast path: the
    pooled (tuple-entry) delivery pipeline in
    :mod:`repro.asyncsim.network` never materializes a :class:`Message`,
    so it charges accounting through this helper instead of
    :meth:`Message.bits`; the two are definitionally identical.
    """
    return bit_size(payload) + ASYNC_HEADER_BITS


class MessageKind(enum.Enum):
    """Wire-level category of a message."""

    DATA = "data"
    CONTROL = "control"
    ASYNC = "async"
    MARKER = "marker"  # Chandy-Lamport snapshot marker (also a pure signal)


@dataclass(slots=True, unsafe_hash=True)
class Message:
    """An immutable message.

    Treat instances as immutable — one object may be shared between the
    network, the trace, and a receiver.  Not ``frozen``: the asynchronous
    simulator builds one per message on its hot path and a frozen
    dataclass pays ``object.__setattr__`` per field on every construction
    (``unsafe_hash`` keeps the by-value hashing frozen used to provide).

    Attributes
    ----------
    kind:
        Wire-level category.
    sender / dest:
        1-based process ids.
    round_no:
        Sending round (synchronous models) or protocol round carried in the
        message (asynchronous model); 0 when not meaningful.
    payload:
        Application content. ``None`` for CONTROL/MARKER signals.
    tag:
        Protocol-level discriminator for ASYNC messages (empty otherwise).
    """

    kind: MessageKind
    sender: int
    dest: int
    round_no: int = 0
    payload: Any = None
    tag: str = ""

    def bits(self) -> int:
        """Bits charged on the wire for this message.

        CONTROL and MARKER messages cost exactly 1 bit (the paper's
        accounting: a pure signal).  DATA costs the payload width.  ASYNC
        costs payload width plus a 32-bit round header plus 8 bits of tag
        framing, reflecting that asynchronous messages must carry their
        round number (Section 4).
        """
        if self.kind in (MessageKind.CONTROL, MessageKind.MARKER):
            return 1
        if self.kind is MessageKind.DATA:
            return bit_size(self.payload)
        return async_bits(self.payload)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        core = f"{self.kind.value}[r{self.round_no}] {self.sender}->{self.dest}"
        if self.tag:
            core += f" {self.tag}"
        if self.payload is not None:
            core += f" {self.payload}"
        return core

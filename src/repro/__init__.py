"""repro — reproduction of Cao–Raynal–Wang–Wu (ICPP'06).

*The Power and Limit of Adding Synchronization Messages for Synchronous
Agreement*: an extended round-based synchronous model whose send phase
pipelines an ordered 1-bit synchronization ("commit") step behind the data
step, a rotating-coordinator uniform consensus algorithm deciding in at
most ``f + 1`` rounds, and the matching ``f + 1`` lower bound.

Quickstart (the unified scenario API — one declarative entry point over
the extended/classic synchronous engines, the asynchronous ◇S simulator,
and the timed fast-failure-detector backend)::

    from repro import Scenario, execute

    record = execute(Scenario(algorithm="crw", n=8, f=2, adversary="coordinator-killer"))
    assert record.spec_ok and record.last_decision_round == record.f_actual + 1

Every registered algorithm (``repro.scenarios.ALGORITHMS``) runs through
the same three lines; swap ``algorithm="mr99"`` or ``"ffd"`` to change
execution stack without changing code.  Engines remain directly usable
for fine-grained control (see :mod:`repro.sync.engine`).

See ``DESIGN.md`` for the system inventory, the experiment index, and
the scenario-layer extension guide.
"""

from repro._version import __version__
from repro.analysis import decision_skew, skew_profile, verify_pipelining_invariant
from repro.asyncsim import (
    AsyncCrash,
    AsyncRunner,
    ChandraTouegConsensus,
    DetectorSpec,
    MR99Consensus,
)
from repro.baselines import EarlyStoppingConsensus, FloodSetConsensus
from repro.ffd import TimedCrash, TimedSpec, run_ffd_consensus
from repro.harness import ALGORITHMS, RunConfig, run_once, run_sweep
from repro.lowerbound import (
    ExplorationConfig,
    Explorer,
    certify_f_plus_one,
    certify_no_run_exceeds,
    refute_round_bound,
)
from repro.rsm import Command, KVStore, ReplicatedLog
from repro.scenarios import (
    EngineLease,
    RunRecord,
    Scenario,
    SweepRunner,
    execute,
    expand_grid,
    register_adversary,
    register_algorithm,
    register_workload,
)
from repro.simulation import run_classic_on_extended, run_extended_on_classic
from repro.snapshot import TransferSystem
from repro.timing import RoundCost, crossover_d, timing_series
from repro.core import (
    CRWConsensus,
    EagerCRW,
    IncreasingCommitCRW,
    TruncatedCRW,
    analyze_locking,
)
from repro.errors import (
    ConfigurationError,
    ModelViolationError,
    ReproError,
    SimulationError,
    SpecViolationError,
)
from repro.net import Message, MessageKind, MessageStats, SizedValue, bit_size
from repro.sync import (
    ClassicSynchronousEngine,
    CommitSplitter,
    CoordinatorKiller,
    CrashEvent,
    CrashPoint,
    CrashSchedule,
    ExtendedSynchronousEngine,
    NoCrash,
    RandomCrashes,
    RoundInbox,
    RunResult,
    SendPlan,
    StaggeredKiller,
    SyncProcess,
    assert_consensus,
    check_consensus,
)

__all__ = [
    "__version__",
    "decision_skew",
    "skew_profile",
    "verify_pipelining_invariant",
    "AsyncCrash",
    "AsyncRunner",
    "ChandraTouegConsensus",
    "DetectorSpec",
    "MR99Consensus",
    "TimedCrash",
    "TimedSpec",
    "run_ffd_consensus",
    "ALGORITHMS",
    "RunConfig",
    "run_once",
    "run_sweep",
    "Scenario",
    "RunRecord",
    "execute",
    "EngineLease",
    "SweepRunner",
    "expand_grid",
    "register_algorithm",
    "register_adversary",
    "register_workload",
    "ExplorationConfig",
    "Explorer",
    "certify_f_plus_one",
    "certify_no_run_exceeds",
    "refute_round_bound",
    "Command",
    "KVStore",
    "ReplicatedLog",
    "run_classic_on_extended",
    "run_extended_on_classic",
    "TransferSystem",
    "RoundCost",
    "crossover_d",
    "timing_series",
    "EarlyStoppingConsensus",
    "FloodSetConsensus",
    "CRWConsensus",
    "EagerCRW",
    "IncreasingCommitCRW",
    "TruncatedCRW",
    "analyze_locking",
    "ConfigurationError",
    "ModelViolationError",
    "ReproError",
    "SimulationError",
    "SpecViolationError",
    "Message",
    "MessageKind",
    "MessageStats",
    "SizedValue",
    "bit_size",
    "ClassicSynchronousEngine",
    "CommitSplitter",
    "CoordinatorKiller",
    "CrashEvent",
    "CrashPoint",
    "CrashSchedule",
    "ExtendedSynchronousEngine",
    "NoCrash",
    "RandomCrashes",
    "RoundInbox",
    "RunResult",
    "SendPlan",
    "StaggeredKiller",
    "SyncProcess",
    "assert_consensus",
    "check_consensus",
]

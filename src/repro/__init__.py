"""repro — reproduction of Cao–Raynal–Wang–Wu (ICPP'06).

*The Power and Limit of Adding Synchronization Messages for Synchronous
Agreement*: an extended round-based synchronous model whose send phase
pipelines an ordered 1-bit synchronization ("commit") step behind the data
step, a rotating-coordinator uniform consensus algorithm deciding in at
most ``f + 1`` rounds, and the matching ``f + 1`` lower bound.

Quickstart::

    from repro import CRWConsensus, ExtendedSynchronousEngine, CoordinatorKiller
    from repro.util import RandomSource

    n, t, f = 8, 3, 2
    rng = RandomSource(7)
    procs = [CRWConsensus(pid, n, proposal=100 + pid) for pid in range(1, n + 1)]
    schedule = CoordinatorKiller(f).schedule(n, t, rng)
    result = ExtendedSynchronousEngine(procs, schedule, t=t, rng=rng).run()
    assert result.last_decision_round == f + 1

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured record.
"""

from repro._version import __version__
from repro.analysis import decision_skew, skew_profile, verify_pipelining_invariant
from repro.asyncsim import (
    AsyncCrash,
    AsyncRunner,
    ChandraTouegConsensus,
    DetectorSpec,
    MR99Consensus,
)
from repro.baselines import EarlyStoppingConsensus, FloodSetConsensus
from repro.ffd import TimedCrash, TimedSpec, run_ffd_consensus
from repro.harness import ALGORITHMS, RunConfig, run_once, run_sweep
from repro.lowerbound import (
    ExplorationConfig,
    Explorer,
    certify_f_plus_one,
    certify_no_run_exceeds,
    refute_round_bound,
)
from repro.rsm import Command, KVStore, ReplicatedLog
from repro.simulation import run_classic_on_extended, run_extended_on_classic
from repro.snapshot import TransferSystem
from repro.timing import RoundCost, crossover_d, timing_series
from repro.core import (
    CRWConsensus,
    EagerCRW,
    IncreasingCommitCRW,
    TruncatedCRW,
    analyze_locking,
)
from repro.errors import (
    ConfigurationError,
    ModelViolationError,
    ReproError,
    SimulationError,
    SpecViolationError,
)
from repro.net import Message, MessageKind, MessageStats, SizedValue, bit_size
from repro.sync import (
    ClassicSynchronousEngine,
    CommitSplitter,
    CoordinatorKiller,
    CrashEvent,
    CrashPoint,
    CrashSchedule,
    ExtendedSynchronousEngine,
    NoCrash,
    RandomCrashes,
    RoundInbox,
    RunResult,
    SendPlan,
    StaggeredKiller,
    SyncProcess,
    assert_consensus,
    check_consensus,
)

__all__ = [
    "__version__",
    "decision_skew",
    "skew_profile",
    "verify_pipelining_invariant",
    "AsyncCrash",
    "AsyncRunner",
    "ChandraTouegConsensus",
    "DetectorSpec",
    "MR99Consensus",
    "TimedCrash",
    "TimedSpec",
    "run_ffd_consensus",
    "ALGORITHMS",
    "RunConfig",
    "run_once",
    "run_sweep",
    "ExplorationConfig",
    "Explorer",
    "certify_f_plus_one",
    "certify_no_run_exceeds",
    "refute_round_bound",
    "Command",
    "KVStore",
    "ReplicatedLog",
    "run_classic_on_extended",
    "run_extended_on_classic",
    "TransferSystem",
    "RoundCost",
    "crossover_d",
    "timing_series",
    "EarlyStoppingConsensus",
    "FloodSetConsensus",
    "CRWConsensus",
    "EagerCRW",
    "IncreasingCommitCRW",
    "TruncatedCRW",
    "analyze_locking",
    "ConfigurationError",
    "ModelViolationError",
    "ReproError",
    "SimulationError",
    "SpecViolationError",
    "Message",
    "MessageKind",
    "MessageStats",
    "SizedValue",
    "bit_size",
    "ClassicSynchronousEngine",
    "CommitSplitter",
    "CoordinatorKiller",
    "CrashEvent",
    "CrashPoint",
    "CrashSchedule",
    "ExtendedSynchronousEngine",
    "NoCrash",
    "RandomCrashes",
    "RoundInbox",
    "RunResult",
    "SendPlan",
    "StaggeredKiller",
    "SyncProcess",
    "assert_consensus",
    "check_consensus",
]

"""Uniform consensus in the fast-failure-detector model, deciding in
``D + f·d`` (ALT02-style; see :mod:`repro.ffd.timed` for the model).

The coordinator chain runs on a fixed grid: process ``p_i`` *takes over*
at time ``(i-1)·d`` iff its detector shows every ``p_j`` (``j < i``)
crashed strictly before ``(i-1)·d``; a takeover broadcasts ``VAL(i, v_i)``
to all.  Because a takeover at slot ``i`` needs ``i-1`` prior crashes, at
most ``f+1`` slots fire, all by time ``f·d < D``.

Every process relays ``VAL(i, v)`` (atomically) on first receipt, and —
since the detector is timestamped — can reconstruct by time ``n·d + d``
*exactly* which slots fired (the same set everywhere).  Let ``L`` be the
highest fired slot:

* **fast path** — at time ``(L-1)·d + D`` a process holding ``v_L``
  decides it: if ``p_L`` completed its broadcast this is everyone, giving
  the headline ``D + f·d`` decision time;
* **fallback** — at time ``(L-1)·d + 2D`` a process decides the value of
  the highest slot it holds.  The relay discipline makes the holdings of
  all live processes identical by then (any value a process held at its
  receipt instant was fully relayed), so the fallback is uniform, and it
  agrees with fast-path deciders because any fast-path decider relayed
  ``v_L`` before deciding.

Uniform agreement is safe against deciders that crash right after deciding
for the same reason: their relay preceded their decision.  Validity holds
because only proposals are ever broadcast.  Termination: every correct
process decides by ``(L-1)·d + 2D``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError
from repro.ffd.timed import TimedCrash, TimedEnvironment, TimedSpec
from repro.net.accounting import MessageStats
from repro.net.message import Message
from repro.util.rng import RandomSource

__all__ = ["FastFDConsensus", "FFDRunResult", "run_ffd_consensus"]


@dataclass(slots=True)
class FFDRunResult:
    """Outcome of a fast-FD consensus run."""

    n: int
    proposals: dict[int, Any]
    decisions: dict[int, Any]
    decision_times: dict[int, float]
    crashed: dict[int, float]
    fired_slots: list[int]
    sim_time: float
    stats: MessageStats | None = None

    @property
    def f(self) -> int:
        return len(self.crashed)

    @property
    def correct_pids(self) -> list[int]:
        return [pid for pid in self.proposals if pid not in self.crashed]

    def check_consensus(self) -> list[str]:
        """Uniform-consensus violations (empty list = run is correct)."""
        out: list[str] = []
        proposed = set(self.proposals.values())
        for pid in self.correct_pids:
            if pid not in self.decisions:
                out.append(f"termination: correct p{pid} never decided")
        for pid, v in self.decisions.items():
            if v not in proposed:
                out.append(f"validity: p{pid} decided unproposed {v!r}")
        if len(set(self.decisions.values())) > 1:
            out.append(f"uniform agreement: {self.decisions}")
        return out

    @property
    def max_decision_time(self) -> float:
        return max(self.decision_times.values(), default=0.0)


class FastFDConsensus:
    """One process of the fast-FD algorithm (driven by the runner below)."""

    def __init__(self, pid: int, n: int, proposal: Any, env: TimedEnvironment) -> None:
        self.pid = pid
        self.n = n
        self.proposal = proposal
        self.env = env
        self.vals: dict[int, Any] = {}  # slot -> value (broadcasts + relays)
        self.decided = False
        self.decision: Any = None
        self.decision_time = 0.0
        self.took_over = False
        self._fired_version = -1  # detector version the cache was built at
        self._fired: list[int] = []

    # -- takeover grid ---------------------------------------------------------

    def slot_time(self) -> float:
        """My grid slot: ``(pid-1)·d``."""
        return (self.pid - 1) * self.env.spec.d

    def takeover_check_time(self) -> float:
        """When the slot condition is decidable: slot + d (all crashes at or
        before the slot are reported by then, detector latency <= d)."""
        return self.slot_time() + self.env.spec.d

    def maybe_take_over(self) -> None:
        """Broadcast my value if every predecessor crashed by my slot time.

        Runs at ``slot + d`` but evaluates the condition *at the slot*, so
        the takeover performed here coincides exactly with what every
        process later reconstructs in :meth:`fired_slots` (up to my own
        death in between, which the fallback path absorbs).
        """
        if self.env.is_crashed(self.pid) or self.decided:
            return
        slot = self.slot_time()
        view = self.env.detectors[self.pid]
        if all(view.crashed_by(j, slot) for j in range(1, self.pid)):
            self.took_over = True
            value = self.proposal
            self.vals.setdefault(self.pid, value)
            self.env.broadcast_takeover(self.pid, "VAL", (self.pid, value))

    # -- receipt + relay ---------------------------------------------------------

    def on_message(self, msg: Message) -> None:
        if msg.tag != "VAL":
            return
        slot, value = msg.payload
        if slot not in self.vals:
            self.vals[slot] = value
            # Atomic relay on first receipt (before any decision).
            for dest in range(1, self.n + 1):
                if dest != self.pid:
                    self.env.unicast(self.pid, dest, "VAL", (slot, value))
            self._maybe_decide_fast()

    # -- decision ---------------------------------------------------------------

    def fired_slots(self) -> list[int]:
        """Slots whose takeover condition held, per my (timestamped) FD.

        Slot ``i`` fired iff every ``j < i`` crashed at or before
        ``(i-1)·d`` *and* ``p_i`` itself was alive then.  Complete and
        identical at every process once the detector settles (time
        ``n·d + d``), which precedes every decision deadline.

        One ascending pass suffices: the condition over the predecessors
        of ``i`` is "the latest predecessor crash is at or before slot
        ``i``", so a running prefix-maximum replaces the quadratic
        pairwise scan — and the first never-reported predecessor ends the
        walk (no later slot can fire past it).  The result is cached
        against the detector view's version: this runs on every message
        receipt, while reports arrive at most ``n`` times.  Treat the
        returned list as read-only.
        """
        view = self.env.detectors[self.pid]
        if view.version == self._fired_version:
            return self._fired
        d = self.env.spec.d
        get_report = view.reports.get
        fired = []
        latest = 0.0  # latest crash among slots < i (crash times are >= 0)
        for i in range(1, self.n + 1):
            slot_time = (i - 1) * d
            my_crash = get_report(i)
            if latest <= slot_time and (my_crash is None or my_crash > slot_time):
                fired.append(i)
            if my_crash is None:
                break  # p_i never reported crashed: no later slot can fire
            if my_crash > latest:
                latest = my_crash
        self._fired_version = view.version
        self._fired = fired
        return fired

    def highest_fired(self) -> int:
        fired = self.fired_slots()
        return fired[-1] if fired else 1

    def fast_deadline(self, L: int) -> float:
        """(L-1)d + d + D: slot L's broadcast (sent at check time) arrived."""
        return (L - 1) * self.env.spec.d + self.env.spec.d + self.env.spec.D

    def _maybe_decide_fast(self) -> None:
        """Fast path: holding v_L once slot L's broadcast must have arrived."""
        if self.decided or self.env.is_crashed(self.pid):
            return
        L = self.highest_fired()
        if L in self.vals and self.env.queue.now >= self.fast_deadline(L):
            self._decide(self.vals[L])

    def on_deadline(self, kind: str) -> None:
        """Timer callbacks: 'fast' at (L-1)d + D, 'fallback' at (L-1)d + 2D."""
        if self.decided or self.env.is_crashed(self.pid):
            return
        L = self.highest_fired()
        if kind == "fast":
            if L in self.vals:
                self._decide(self.vals[L])
        else:  # fallback: highest slot actually held
            held = [s for s in sorted(self.vals) if s <= L]
            if held:
                self._decide(self.vals[held[-1]])
            # else: nothing ever received — only possible when every
            # broadcast died entirely; with f <= n-1 some slot always
            # completes to self.vals via own takeover, so this is dead code
            # kept as a guard.

    def _decide(self, value: Any) -> None:
        self.decided = True
        self.decision = value
        self.decision_time = self.env.queue.now


def run_ffd_consensus(
    spec: TimedSpec,
    proposals: list[Any],
    crashes: list[TimedCrash] | None = None,
    *,
    rng: RandomSource | None = None,
) -> FFDRunResult:
    """Wire up and run one fast-FD consensus instance."""
    if len(proposals) != spec.n:
        raise ConfigurationError(
            f"need {spec.n} proposals, got {len(proposals)}"
        )
    env = TimedEnvironment(spec, list(crashes or []), rng or RandomSource(0))
    procs = {
        pid: FastFDConsensus(pid, spec.n, proposals[pid - 1], env)
        for pid in range(1, spec.n + 1)
    }

    env.wire(
        on_deliver=lambda msg: procs[msg.dest].on_message(msg),
        on_fd=lambda observer: procs[observer]._maybe_decide_fast(),
    )

    # Takeover grid (condition evaluated at the slot, checked at slot + d).
    for pid, proc in procs.items():
        env.queue.schedule_at(
            proc.takeover_check_time(), proc.maybe_take_over, label=f"takeover slot {pid}"
        )

    # Decision deadlines: schedule conservatively for every possible L; the
    # handlers re-check the *actual* L so early timers are harmless.  The
    # deadline instants depend only on L, so one timer per (L, kind) walks
    # every process in pid order — the same handler order the old
    # per-process timers produced — instead of 2·n² separate events.
    proc_list = [procs[pid] for pid in sorted(procs)]

    def fire_deadlines(kind: str) -> None:
        for proc in proc_list:
            proc.on_deadline(kind)

    any_proc = proc_list[0]
    for L in range(1, spec.n + 1):
        env.queue.schedule_at(any_proc.fast_deadline(L), fire_deadlines, "fast")
        env.queue.schedule_at(
            any_proc.fast_deadline(L) + spec.D, fire_deadlines, "fallback"
        )

    def settled() -> bool:
        return all(p.decided or env.is_crashed(p.pid) for p in procs.values())

    end = env.queue.run(until=spec.n * spec.d + 4 * spec.D, stop=settled)

    any_view = procs[max(procs)].fired_slots()
    return FFDRunResult(
        n=spec.n,
        proposals={pid: p.proposal for pid, p in procs.items()},
        decisions={pid: p.decision for pid, p in procs.items() if p.decided},
        decision_times={
            pid: p.decision_time for pid, p in procs.items() if p.decided
        },
        crashed=dict(env.crashed),
        fired_slots=any_view,
        sim_time=end,
        stats=env.stats,
    )

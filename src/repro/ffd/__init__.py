"""Fast-failure-detector model and consensus (related work [1], E6)."""

from repro.ffd.consensus import FastFDConsensus, FFDRunResult, run_ffd_consensus
from repro.ffd.timed import FastDetectorView, TimedCrash, TimedEnvironment, TimedSpec

__all__ = [
    "FastFDConsensus",
    "FFDRunResult",
    "run_ffd_consensus",
    "FastDetectorView",
    "TimedCrash",
    "TimedEnvironment",
    "TimedSpec",
]

"""Timed synchronous model with a *fast failure detector* (ALT02).

The paper's related-work section contrasts its extended model with the
fast-failure-detector model of Aguilera, Le Lann and Toueg (DISC'02): a
synchronous system where message delay (plus processing) is bounded by
``D`` while a hardware-assisted detector reports any crash within
``d ≪ D``.  Their consensus algorithm decides in time ``D + f·d``; our E6
experiment compares that curve against the extended model's
``(f+1)(D+d)``.

This module provides the substrate: a continuous-time simulation with

* per-message delays drawn in ``[delta_min·D, D]`` (reliable channels);
* crash injection at absolute times, or *during* a process's takeover
  broadcast with an explicit delivered subset (the interesting adversary);
* a fast detector that reports a crash to every observer within ``d``,
  **timestamped** with the true crash time.  (Timestamping is a mild,
  documented strengthening over ALT02 that lets every observer reconstruct
  the same takeover history; it is implementable by the same synchronized
  hardware that makes the detector fast.)

Model requirement checked at construction: ``n·d < D`` — the takeover grid
(one slot every ``d``) must complete before the earliest possible decision
at time ``D``.  This matches the regime the DISC'02 paper targets
(``d`` orders of magnitude below ``D``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.asyncsim.events import EventQueue
from repro.errors import ConfigurationError
from repro.net.accounting import MessageStats
from repro.net.message import Message, MessageKind
from repro.util.rng import RandomSource

__all__ = ["TimedSpec", "TimedCrash", "FastDetectorView", "TimedEnvironment"]


@dataclass(frozen=True)
class TimedSpec:
    """Timing parameters of the fast-FD model."""

    n: int
    D: float = 100.0  # round-trip-ish bound: message delay + processing
    d: float = 1.0  # crash-detection latency bound (d << D)
    delta_min: float = 0.3  # messages take at least delta_min * D

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigurationError("need n >= 2")
        if self.D <= 0 or self.d <= 0:
            raise ConfigurationError("D and d must be > 0")
        if not 0 <= self.delta_min <= 1:
            raise ConfigurationError("delta_min must be in [0, 1]")
        if self.n * self.d >= self.D:
            raise ConfigurationError(
                f"fast-FD model needs n*d < D (takeover grid inside one message "
                f"delay); got n={self.n}, d={self.d}, D={self.D}"
            )


@dataclass(frozen=True)
class TimedCrash:
    """Crash ``pid`` at ``time``; if ``takeover_subset`` is not None and the
    crash instant coincides with the process's takeover broadcast, only that
    subset of destinations receives the broadcast (ordered-subset adversary
    of the takeover step)."""

    pid: int
    time: float
    takeover_subset: frozenset[int] | None = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError("crash time must be >= 0")


class FastDetectorView:
    """One observer's view of the fast detector: crash reports with true
    crash timestamps, visible ``<= d`` after the crash.

    ``version`` increments on every new report, so derived read-only
    views (the consensus layer's fired-slot reconstruction) can be cached
    and invalidated without re-scanning the report map.
    """

    __slots__ = ("observer", "_env", "reports", "version")

    def __init__(self, observer: int, env: "TimedEnvironment") -> None:
        self.observer = observer
        self._env = env
        self.reports: dict[int, float] = {}  # pid -> true crash time
        self.version = 0

    def crashed_by(self, pid: int, time: float) -> bool:
        """Did ``pid`` crash at or before ``time`` (per current reports)?"""
        t = self.reports.get(pid)
        return t is not None and t <= time

    def known_crashed(self) -> dict[int, float]:
        """All reported crashes (pid -> crash time)."""
        return dict(self.reports)


class TimedEnvironment:
    """Event queue + network + fast detector + crash injection."""

    def __init__(
        self,
        spec: TimedSpec,
        crashes: list[TimedCrash],
        rng: RandomSource,
    ) -> None:
        self.spec = spec
        self.queue = EventQueue()
        self.rng = rng
        self.stats = MessageStats()
        self.crashed: dict[int, float] = {}
        self._crash_plan: dict[int, TimedCrash] = {}
        for c in crashes:
            if c.pid in self._crash_plan:
                raise ConfigurationError(f"p{c.pid} crashes twice")
            if not 1 <= c.pid <= spec.n:
                raise ConfigurationError(f"crash pid {c.pid} out of range")
            self._crash_plan[c.pid] = c
        self.detectors = {
            pid: FastDetectorView(pid, self) for pid in range(1, spec.n + 1)
        }
        self._on_deliver: Callable[[Message], None] | None = None
        self._on_fd: Callable[[int], None] | None = None
        # Preresolved timing bounds and frozen pid tables: the per-message
        # and per-crash paths below draw on these instead of rebuilding
        # ranges and recomputing products per step.
        self._delay_lo = spec.delta_min * spec.D
        self._delay_hi = spec.D
        self._fd_latency_lo = 0.1 * spec.d
        self._fd_latency_hi = spec.d
        self._all_pids: tuple[int, ...] = tuple(range(1, spec.n + 1))
        self._others: dict[int, tuple[int, ...]] = {
            pid: tuple(j for j in self._all_pids if j != pid)
            for pid in self._all_pids
        }

    # -- wiring ---------------------------------------------------------------

    def wire(
        self,
        on_deliver: Callable[[Message], None],
        on_fd: Callable[[int], None],
    ) -> None:
        """Install protocol callbacks, then schedule the planned crashes."""
        self._on_deliver = on_deliver
        self._on_fd = on_fd
        for crash in self._crash_plan.values():
            if crash.takeover_subset is None:
                self.queue.schedule_at(crash.time, self._crash_now, crash.pid)
            # takeover-subset crashes fire inside broadcast_takeover()

    # -- crash machinery --------------------------------------------------------

    def _crash_now(self, pid: int) -> None:
        if pid in self.crashed:
            return
        now = self.queue.now
        self.crashed[pid] = now
        schedule = self.queue.schedule
        uniform = self.rng.uniform
        lo, hi = self._fd_latency_lo, self._fd_latency_hi
        for observer in self._others[pid]:
            schedule(uniform(lo, hi), self._report, (observer, pid, now))

    def _report(self, entry: tuple[int, int, float]) -> None:
        observer, pid, crash_time = entry
        if observer in self.crashed:
            return
        view = self.detectors[observer]
        if pid not in view.reports:
            view.reports[pid] = crash_time
            view.version += 1
            assert self._on_fd is not None
            self._on_fd(observer)

    def takeover_crash_plan(self, pid: int) -> frozenset[int] | None:
        """The during-takeover delivered subset for ``pid``, if scheduled."""
        crash = self._crash_plan.get(pid)
        if crash is not None and crash.takeover_subset is not None:
            return crash.takeover_subset
        return None

    def is_crashed(self, pid: int) -> bool:
        """Ground truth used by the runner (never by protocol logic)."""
        return pid in self.crashed

    # -- message transport ---------------------------------------------------------

    def _delay(self) -> float:
        return self.rng.uniform(self._delay_lo, self._delay_hi)

    def _deliver_msg(self, entry: tuple[Message, int]) -> None:
        """Shared delivery action (crash check precedes the delivery charge)."""
        msg, bits = entry
        if msg.dest in self.crashed:
            return
        self.stats.bulk_async(1, bits, delivered=True)
        assert self._on_deliver is not None
        self._on_deliver(msg)

    def unicast(self, sender: int, dest: int, tag: str, payload: Any) -> None:
        """Send one message with a model-drawn delay."""
        msg = Message(MessageKind.ASYNC, sender, dest, 0, payload=payload, tag=tag)
        bits = msg.bits()
        self.stats.bulk_async(1, bits)
        self.queue.schedule(self._delay(), self._deliver_msg, (msg, bits))

    def broadcast_takeover(self, pid: int, tag: str, payload: Any) -> bool:
        """Takeover broadcast with message-granular crash semantics.

        Returns True if the broadcast completed (no during-takeover crash).
        On a during-takeover crash, delivers to the scheduled subset only
        and crashes the sender at the current instant.
        """
        subset = self.takeover_crash_plan(pid)
        dests = self._others[pid]
        if subset is None:
            for dest in dests:
                self.unicast(pid, dest, tag, payload)
            return True
        for dest in dests:
            if dest in subset:
                self.unicast(pid, dest, tag, payload)
        self._crash_now(pid)
        return False

"""Cross-model simulations (Section 2.2 computability equivalence)."""

from repro.simulation.classic_on_extended import (
    ClassicOnExtended,
    run_classic_on_extended,
)
from repro.simulation.extended_on_classic import (
    CTRL,
    ExtendedOnClassic,
    run_extended_on_classic,
    translate_schedule,
)

__all__ = [
    "ClassicOnExtended",
    "run_classic_on_extended",
    "CTRL",
    "ExtendedOnClassic",
    "run_extended_on_classic",
    "translate_schedule",
]

"""Simulating the extended model on top of the classic model.

Section 2.2's computability argument: the extended model adds no power —
"sending each control message in separate consecutive rounds provides a
(non-efficient) simulation" on the classic model.  The separate rounds are
what preserve the *ordered-prefix* crash semantics: if each control
position occupies its own classic round, a crash between rounds cuts the
sequence exactly at a position boundary, and a crash during one position's
round delivers-or-drops that single 1-bit message — together, an ordered
prefix.

Block layout: one extended round becomes ``B = n`` classic rounds —

* position 0: the extended round's *data step* (all data messages);
* positions 1..n-1: control-sequence positions 0..n-2, one per round,
  carried as 1-bit classic data messages (:data:`CTRL`).

The wrapped process's computation phase runs once per block, at the block
end, fed with everything the block delivered — matching the extended
model's "messages of round r are received in round r, computation last".
A process crashed anywhere inside a block never reaches the block end, so
(as in the extended model) it neither computes nor decides in its crash
round; classic deliveries it absorbed mid-block die in the adapter's
buffer without touching the wrapped state.

Cost: a ``(f+1)``-round extended algorithm needs ``(f+1)·n`` classic
rounds this way — the E7 benchmark measures exactly this blow-up.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.errors import ConfigurationError
from repro.net.payload import SizedValue
from repro.sync.api import NO_SEND, RoundInbox, SendPlan, SyncProcess
from repro.sync.crash import CrashEvent, CrashPoint, CrashSchedule, Prefix, Subset
from repro.sync.engine import ClassicSynchronousEngine
from repro.sync.result import RunResult
from repro.util.rng import RandomSource

__all__ = [
    "CTRL",
    "ExtendedOnClassic",
    "translate_schedule",
    "run_extended_on_classic",
]

#: The 1-bit stand-in for a control message on a classic channel.
CTRL = SizedValue("ctrl", 1)


class ExtendedOnClassic(SyncProcess):
    """Adapter: one extended-model process driven by a classic engine."""

    def __init__(self, inner: SyncProcess) -> None:
        super().__init__(inner.pid, inner.n)
        self.inner = inner
        self.proposal = getattr(inner, "proposal", None)
        self.block = inner.n  # classic rounds per extended round
        self._plan: SendPlan = NO_SEND
        self._data_in: dict[int, Any] = {}
        self._control_in: set[int] = set()

    # -- round geometry --------------------------------------------------------

    def _position(self, classic_round: int) -> tuple[int, int]:
        """Map a classic round to (extended_round, position-in-block)."""
        return (classic_round - 1) // self.block + 1, (classic_round - 1) % self.block

    # -- classic hooks ------------------------------------------------------------

    def send_phase(self, classic_round: int) -> SendPlan:
        ext_round, pos = self._position(classic_round)
        if pos == 0:
            # Extended data step: query the wrapped process once per block.
            self._plan = self.inner.send_phase(ext_round)
            self._plan.validate(self.pid, self.n, allow_control=True)
            if self._plan.data:
                return SendPlan(data=dict(self._plan.data))
            return NO_SEND
        k = pos - 1  # control-sequence position carried by this round
        if k < len(self._plan.control):
            return SendPlan(data={self._plan.control[k]: CTRL})
        return NO_SEND

    def compute_phase(self, classic_round: int, inbox: RoundInbox) -> None:
        ext_round, pos = self._position(classic_round)
        if pos == 0:
            self._data_in = dict(inbox.data)
        else:
            # Control rounds carry only CTRL signals.
            self._control_in.update(inbox.data.keys())
        if pos == self.block - 1:
            merged = RoundInbox(
                data=self._data_in, control=frozenset(self._control_in)
            )
            self._data_in, self._control_in = {}, set()
            self.inner.compute_phase(ext_round, merged)
            if self.inner.decided:
                self.decide(self.inner.decision)


def translate_schedule(schedule: CrashSchedule, n: int) -> CrashSchedule:
    """Translate an extended-model crash schedule into block coordinates.

    ``DURING_CONTROL`` events need an explicit ``control_prefix`` (a random
    prefix has no meaning before the block's plan exists); the prefix ``k``
    becomes a BEFORE_SEND crash in the classic round carrying position
    ``k`` — deliveries of positions ``0..k-1`` happened in earlier rounds.
    """
    block = n
    events = []
    for ev in schedule.events.values():
        base = (ev.round_no - 1) * block + 1
        if ev.point is CrashPoint.BEFORE_SEND:
            events.append(CrashEvent(ev.pid, base, CrashPoint.BEFORE_SEND))
        elif ev.point is CrashPoint.DURING_DATA:
            events.append(
                CrashEvent(
                    ev.pid,
                    base,
                    CrashPoint.DURING_DATA,
                    data_subset=ev.data_subset,
                    data_policy=ev.data_policy,
                )
            )
        elif ev.point is CrashPoint.DURING_CONTROL:
            if ev.control_prefix is None and ev.control_policy is Prefix.RANDOM:
                raise ConfigurationError(
                    "translate_schedule needs explicit control prefixes "
                    "(random prefixes have no static block coordinate)"
                )
            prefix = (
                ev.control_prefix
                if ev.control_prefix is not None
                else (0 if ev.control_policy is Prefix.NONE else block - 1)
            )
            if prefix >= block - 1:
                # Every control position delivered: equivalent to dying
                # right after the send phase — everything out, no
                # block-end computation (and hence no decision).
                events.append(
                    CrashEvent(ev.pid, base + block - 1, CrashPoint.AFTER_SEND)
                )
            else:
                events.append(
                    CrashEvent(ev.pid, base + 1 + prefix, CrashPoint.BEFORE_SEND)
                )
        else:  # AFTER_SEND: everything of the block sent, no block-end compute
            events.append(
                CrashEvent(ev.pid, base + block - 1, CrashPoint.AFTER_SEND)
            )
    return CrashSchedule(events)


def run_extended_on_classic(
    inner_factory: Callable[[], Sequence[SyncProcess]],
    schedule: CrashSchedule | None = None,
    *,
    t: int | None = None,
    rng: RandomSource | None = None,
    max_extended_rounds: int | None = None,
) -> RunResult:
    """Run extended-model processes on the classic engine via the adapter."""
    inners = list(inner_factory())
    n = inners[0].n
    adapters = [ExtendedOnClassic(p) for p in inners]
    classic_schedule = (
        translate_schedule(schedule, n) if schedule is not None else None
    )
    horizon = (max_extended_rounds if max_extended_rounds is not None else n + 1) * n
    engine = ClassicSynchronousEngine(
        adapters,
        classic_schedule,
        t=t if t is not None else n - 1,
        rng=rng,
    )
    return engine.run(max_rounds=horizon)

"""Simulating the classic model on top of the extended model.

This direction is trivial — "if we suppress the second sending step we
obtain the traditional synchronous model" (Section 2.2) — so the embedding
is the identity: a classic process already emits empty control sequences
and runs unchanged on the extended engine.  The wrapper below exists to
make the embedding explicit and to *enforce* classicness (a process that
does emit control destinations is rejected rather than silently granted
extended-model power).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import ModelViolationError
from repro.sync.api import RoundInbox, SendPlan, SyncProcess
from repro.sync.crash import CrashSchedule
from repro.sync.extended import ExtendedSynchronousEngine
from repro.sync.result import RunResult
from repro.util.rng import RandomSource

__all__ = ["ClassicOnExtended", "run_classic_on_extended"]


class ClassicOnExtended(SyncProcess):
    """Identity embedding that polices the no-control-messages rule."""

    def __init__(self, inner: SyncProcess) -> None:
        super().__init__(inner.pid, inner.n)
        self.inner = inner
        self.proposal = getattr(inner, "proposal", None)

    def send_phase(self, round_no: int) -> SendPlan:
        plan = self.inner.send_phase(round_no)
        if plan.control:
            raise ModelViolationError(
                f"p{self.pid}: classic process attempted control messages"
            )
        return plan

    def compute_phase(self, round_no: int, inbox: RoundInbox) -> None:
        self.inner.compute_phase(round_no, inbox)
        if self.inner.decided:
            self.decide(self.inner.decision)


def run_classic_on_extended(
    inner_factory: Callable[[], Sequence[SyncProcess]],
    schedule: CrashSchedule | None = None,
    *,
    t: int | None = None,
    rng: RandomSource | None = None,
    max_rounds: int | None = None,
) -> RunResult:
    """Run classic-model processes unchanged on the extended engine."""
    inners = list(inner_factory())
    wrapped = [ClassicOnExtended(p) for p in inners]
    engine = ExtendedSynchronousEngine(
        wrapped,
        schedule,
        t=t if t is not None else inners[0].n - 1,
        rng=rng,
    )
    return engine.run(max_rounds)

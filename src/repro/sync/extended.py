"""The extended synchronous engine (paper, Section 2.1).

The shared round pipeline lives in :mod:`repro.sync.engine`;
:class:`ExtendedSynchronousEngine` is the canonical name for the
extended-model configuration (ordered control step enabled, all four crash
points available).  It exists as its own class so call sites and error
messages say which model they run under, and so model-specific extension
points have an obvious home.
"""

from __future__ import annotations

from repro.sync.engine import SynchronousEngine

__all__ = ["ExtendedSynchronousEngine"]


class ExtendedSynchronousEngine(SynchronousEngine):
    """Round engine with the two-step send phase of the extended model.

    Semantics (Section 2.1 of the paper):

    * send phase = data step, then control step, *pipelined* — plans are
      collected before any delivery, so no computation can slip between
      the two steps;
    * a crash during the data step delivers an arbitrary subset of the
      planned data messages and no control message;
    * a crash during the control step delivers all data and an ordered
      prefix of the control sequence;
    * messages sent in round ``r`` are received in round ``r``;
    * all local computation happens in the computation phase.
    """

    model_name = "extended"
    allow_control = True

"""Round engines for the classic and extended synchronous models.

The full round pipeline (Section 2.1 of the paper) is implemented once in
:func:`execute_round`, shared by both engine classes and by the
lower-bound explorer (which calls it on deep-copied process states while
enumerating adversary choices):

1. **Plan** — every live, undecided process produces its
   :class:`~repro.sync.api.SendPlan` *before any delivery*, enforcing the
   rule that round-``r`` messages depend only on rounds ``< r``.
2. **Resolve crashes** — the crash events scheduled for this round are
   resolved against the actual plans into concrete delivered
   subsets/prefixes (:class:`~repro.sync.crash.ResolvedCrash`).
3. **Deliver** — data messages first, then control messages in plan order
   (prefix-truncated for crashing senders).  Receivers that crash this
   round, already crashed, or already decided receive nothing.
4. **Compute** — every live, non-crashing, undecided process consumes its
   :class:`~repro.sync.api.RoundInbox`; new decisions are collected.

Message accounting: a message is *sent* if it escaped the crashing process
(i.e. will be delivered to a live receiver or would have been, had the
receiver been up) and *delivered* if a live, undecided, non-crashing
process actually consumed it.  Sends addressed to processes that already
crashed/decided still count as sent — the sender cannot know.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ConfigurationError, SimulationError
from repro.net.accounting import MessageStats
from repro.net.message import Message, MessageKind
from repro.sync.api import RoundInbox, SendPlan, SyncProcess
from repro.sync.crash import CrashEvent, CrashPoint, CrashSchedule, ResolvedCrash
from repro.sync.result import ProcessOutcome, RunResult
from repro.util.rng import RandomSource
from repro.util.trace import Trace

__all__ = [
    "RoundOutcome",
    "execute_round",
    "SynchronousEngine",
    "ClassicSynchronousEngine",
]


@dataclass(slots=True)
class RoundOutcome:
    """What happened in one executed round."""

    round_no: int
    plans: dict[int, SendPlan]
    resolved_crashes: dict[int, ResolvedCrash]
    inboxes: dict[int, RoundInbox]
    new_decisions: dict[int, Any]


def execute_round(
    procs: Mapping[int, SyncProcess],
    active: set[int],
    round_no: int,
    crash_events: Mapping[int, CrashEvent],
    *,
    allow_control: bool,
    stats: MessageStats,
    trace: Trace,
    rng: RandomSource | None,
) -> RoundOutcome:
    """Execute one round over ``active`` processes; mutates process state.

    ``crash_events`` maps pid → the event scheduled for *this* round (only
    pids in ``active`` matter; a process that already crashed or decided
    cannot crash again).  The caller updates the ``active`` set from the
    returned outcome.
    """
    n = next(iter(procs.values())).n if procs else 0

    # Phase 1: collect send plans from every active process.
    plans: dict[int, SendPlan] = {}
    for pid in sorted(active):
        plan = procs[pid].send_phase(round_no)
        plan.validate(pid, n, allow_control=allow_control)
        plans[pid] = plan

    # Phase 2: resolve this round's crashes against actual plans.
    resolved: dict[int, ResolvedCrash] = {}
    for pid, event in crash_events.items():
        if pid not in active:
            continue
        plan = plans[pid]
        resolved[pid] = event.resolve(plan.data.keys(), plan.control, rng)
        trace.record(
            round_no,
            "crash",
            pid,
            point=event.point.value,
            data_subset=tuple(sorted(resolved[pid].data_subset)),
            control_prefix=resolved[pid].control_prefix,
        )

    crashing = set(resolved)
    receivers = active - crashing  # crashed processes receive nothing this round

    # Phase 3: deliver.  Data step first, then control step (plan order).
    data_in: dict[int, dict[int, Any]] = {pid: {} for pid in receivers}
    control_in: dict[int, set[int]] = {pid: set() for pid in receivers}

    for sender in sorted(active):
        plan = plans[sender]
        rc = resolved.get(sender)
        if rc is None:
            data_dests = set(plan.data.keys())
            control_dests = plan.control
        else:
            data_dests = set(rc.data_subset)
            control_dests = plan.control[: rc.control_prefix]

        for dest in sorted(data_dests):
            msg = Message(
                MessageKind.DATA, sender, dest, round_no, payload=plan.data[dest]
            )
            stats.on_send(msg)
            if dest in receivers:
                stats.on_deliver(msg)
                data_in[dest][sender] = plan.data[dest]
                trace.record(
                    round_no, "deliver.data", sender, dest=dest, payload=plan.data[dest]
                )
            else:
                trace.record(
                    round_no, "drop.data", sender, dest=dest, payload=plan.data[dest]
                )
        for dest in control_dests:
            msg = Message(MessageKind.CONTROL, sender, dest, round_no)
            stats.on_send(msg)
            if dest in receivers:
                stats.on_deliver(msg)
                control_in[dest].add(sender)
                trace.record(round_no, "deliver.control", sender, dest=dest)
            else:
                trace.record(round_no, "drop.control", sender, dest=dest)

    # Phase 4: receive + compute for the survivors.
    inboxes: dict[int, RoundInbox] = {}
    new_decisions: dict[int, Any] = {}
    for pid in sorted(receivers):
        inbox = RoundInbox(data=data_in[pid], control=frozenset(control_in[pid]))
        inboxes[pid] = inbox
        proc = procs[pid]
        proc.compute_phase(round_no, inbox)
        if proc.decided:
            new_decisions[pid] = proc.decision
            trace.record(round_no, "decide", pid, value=proc.decision)

    return RoundOutcome(
        round_no=round_no,
        plans=plans,
        resolved_crashes=resolved,
        inboxes=inboxes,
        new_decisions=new_decisions,
    )


class SynchronousEngine:
    """Extended-model engine: two-step send phase with ordered control step.

    Parameters
    ----------
    processes:
        The ``n`` processes, with pids exactly ``1..n`` (any order).
    schedule:
        Crash schedule for the run (defaults to failure-free).
    t:
        Resilience bound; the schedule must not crash more than ``t``.
    rng:
        Source used to resolve RANDOM subset/prefix policies.
    trace:
        Set ``False`` to disable event recording (large sweeps).
    """

    model_name = "extended"
    allow_control = True

    def __init__(
        self,
        processes: list[SyncProcess],
        schedule: CrashSchedule | None = None,
        *,
        t: int | None = None,
        rng: RandomSource | None = None,
        trace: bool = True,
    ) -> None:
        if not processes:
            raise ConfigurationError("no processes given")
        n = processes[0].n
        pids = sorted(p.pid for p in processes)
        if pids != list(range(1, n + 1)) or any(p.n != n for p in processes):
            raise ConfigurationError(
                f"processes must have pids exactly 1..n with a common n; got {pids}"
            )
        self.n = n
        self.t = n - 1 if t is None else t
        if not 0 <= self.t < n:
            raise ConfigurationError(f"t must satisfy 0 <= t < n, got t={self.t}, n={n}")
        self.procs: dict[int, SyncProcess] = {p.pid: p for p in processes}
        self.schedule = schedule if schedule is not None else CrashSchedule.none()
        self.schedule.validate(n, self.t)
        self.rng = rng
        self.stats = MessageStats()
        self.trace = Trace(enabled=trace)
        self._active: set[int] = set(pids)
        self._crashed_round: dict[int, int] = {}
        self._decided_round: dict[int, int] = {}
        self._proposals: dict[int, Any] = {
            pid: getattr(p, "proposal", None) for pid, p in self.procs.items()
        }
        self._round = 0

    # -- stepping -----------------------------------------------------------

    @property
    def round_no(self) -> int:
        """Number of rounds executed so far."""
        return self._round

    @property
    def active_pids(self) -> set[int]:
        """Processes still alive and undecided."""
        return set(self._active)

    def step(self) -> RoundOutcome:
        """Execute one round; mutates engine and process state."""
        if not self._active:
            raise SimulationError("step() called with no active processes")
        self._round += 1
        events = {
            ev.pid: ev
            for ev in self.schedule.crashes_in_round(self._round)
            if ev.pid in self._active
        }
        outcome = execute_round(
            self.procs,
            self._active,
            self._round,
            events,
            allow_control=self.allow_control,
            stats=self.stats,
            trace=self.trace,
            rng=self.rng,
        )
        for pid in outcome.resolved_crashes:
            self._crashed_round[pid] = self._round
            self._active.discard(pid)
        for pid in outcome.new_decisions:
            self._decided_round[pid] = self._round
            self._active.discard(pid)
        return outcome

    def run(self, max_rounds: int | None = None) -> RunResult:
        """Run until every process decided or crashed, or ``max_rounds``.

        The default budget ``n + 1`` is safely above the paper's ``t + 1``
        worst case for every algorithm shipped here; exceeding it marks the
        run ``completed=False`` (the spec checker then reports a
        termination violation rather than looping forever).
        """
        budget = (self.n + 1) if max_rounds is None else max_rounds
        if budget < 1:
            raise ConfigurationError(f"max_rounds must be >= 1, got {budget}")
        while self._active and self._round < budget:
            self.step()
        return self.result()

    def result(self) -> RunResult:
        """Materialize the current :class:`~repro.sync.result.RunResult`."""
        outcomes: dict[int, ProcessOutcome] = {}
        for pid, proc in self.procs.items():
            outcomes[pid] = ProcessOutcome(
                pid=pid,
                proposal=self._proposals[pid],
                decided=proc.decided,
                decision=proc.decision if proc.decided else None,
                decided_round=self._decided_round.get(pid, 0),
                crashed=pid in self._crashed_round,
                crashed_round=self._crashed_round.get(pid, 0),
            )
        return RunResult(
            n=self.n,
            t=self.t,
            model=self.model_name,
            outcomes=outcomes,
            rounds_executed=self._round,
            completed=not self._active,
            stats=self.stats,
            trace=self.trace,
        )


class ClassicSynchronousEngine(SynchronousEngine):
    """Classic model: identical pipeline, control step forbidden.

    Suppressing the second sending step yields exactly the traditional
    round-based synchronous model (paper, Section 2.2), so the classic
    engine is the extended engine with ``allow_control=False`` — any plan
    carrying control destinations raises
    :class:`~repro.errors.ModelViolationError`.  DURING_CONTROL crash
    points are rejected up front since the step does not exist.
    """

    model_name = "classic"
    allow_control = False

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        for ev in self.schedule.events.values():
            if ev.point is CrashPoint.DURING_CONTROL:
                raise ConfigurationError(
                    f"p{ev.pid}: DURING_CONTROL crash point is not part of the classic model"
                )

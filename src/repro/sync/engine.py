"""Round engines for the classic and extended synchronous models.

The full round pipeline (Section 2.1 of the paper) is implemented once in
:func:`execute_round`, shared by both engine classes and by the
lower-bound explorer (which calls it on deep-copied process states while
enumerating adversary choices):

1. **Plan** — every live, undecided process produces its
   :class:`~repro.sync.api.SendPlan` *before any delivery*, enforcing the
   rule that round-``r`` messages depend only on rounds ``< r``.
2. **Resolve crashes** — the crash events scheduled for this round are
   resolved against the actual plans into concrete delivered
   subsets/prefixes (:class:`~repro.sync.crash.ResolvedCrash`).
3. **Deliver** — data messages first, then control messages in plan order
   (prefix-truncated for crashing senders).  Receivers that crash this
   round, already crashed, or already decided receive nothing.
4. **Compute** — every live, non-crashing, undecided process consumes its
   :class:`~repro.sync.api.RoundInbox`; new decisions are collected.

Message accounting: a message is *sent* if it escaped the crashing process
(i.e. will be delivered to a live receiver or would have been, had the
receiver been up) and *delivered* if a live, undecided, non-crashing
process actually consumed it.  Sends addressed to processes that already
crashed/decided still count as sent — the sender cannot know.

Two delivery paths implement identical semantics:

* **traced** (``trace.enabled``): one frozen :class:`Message` per
  (sender, dest) pair, recorded event by event — what tests and the
  analysis layer inspect;
* **fast** (tracing off — the sweep/benchmark default): no message
  objects at all.  Payloads are written straight into the per-receiver
  inbox dicts and accounting happens through the bulk
  :class:`MessageStats` interface, charging a round's traffic in
  aggregate exactly like the paper's counting arguments do.

The two paths produce identical :class:`RoundOutcome`/:class:`MessageStats`
(pinned by ``tests/sync/test_fastpath_parity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Mapping

from repro.errors import ConfigurationError, SimulationError
from repro.net.accounting import MessageStats
from repro.net.message import Message, MessageKind
from repro.net.payload import bit_size
from repro.sync.api import NO_SEND, RoundInbox, SendPlan, SyncProcess
from repro.sync.crash import CrashEvent, CrashPoint, CrashSchedule, ResolvedCrash
from repro.sync.result import ProcessOutcome, RunResult
from repro.util.rng import RandomSource
from repro.util.trace import Trace

#: Shared inbox constant: frozensets are immutable, so every receiver of a
#: control-free round can hold the same object without aliasing risk.
_NO_CONTROL: frozenset[int] = frozenset()

#: Shared inbox for receivers that heard nothing this round.  The data view
#: is a read-only mapping proxy, so accidental mutation by an algorithm
#: raises instead of leaking between processes.
_EMPTY_INBOX = RoundInbox(data=MappingProxyType({}), control=_NO_CONTROL)

__all__ = [
    "RoundOutcome",
    "execute_round",
    "SynchronousEngine",
    "ClassicSynchronousEngine",
]


@dataclass(slots=True)
class RoundOutcome:
    """What happened in one executed round."""

    round_no: int
    plans: dict[int, SendPlan]
    resolved_crashes: dict[int, ResolvedCrash]
    inboxes: dict[int, RoundInbox]
    new_decisions: dict[int, Any]


def execute_round(
    procs: Mapping[int, SyncProcess],
    active: set[int],
    round_no: int,
    crash_events: Mapping[int, CrashEvent],
    *,
    allow_control: bool,
    stats: MessageStats,
    trace: Trace,
    rng: RandomSource | None,
    n: int | None = None,
    pids: frozenset[int] | None = None,
    active_order: list[int] | None = None,
) -> RoundOutcome:
    """Execute one round over ``active`` processes; mutates process state.

    ``crash_events`` maps pid → the event scheduled for *this* round (only
    pids in ``active`` matter; a process that already crashed or decided
    cannot crash again).  The caller updates the ``active`` set from the
    returned outcome.

    ``n``, ``pids`` (``frozenset(range(1, n + 1))``), and ``active_order``
    (``active`` in ascending pid order) are optional precomputed values:
    engines stepping many rounds pass them so each round neither
    rediscovers the system size, re-materializes the valid destination
    set for plan validation, nor re-sorts the active set.
    """
    if n is None:
        n = next(iter(procs.values())).n if procs else 0
    traced = trace.enabled

    # Phase 1: collect send plans from every active process.  Senders with
    # anything to say are collected separately so delivery skips the
    # (typically many) silent processes entirely.
    if active_order is None:
        active_order = sorted(active)
    plans: dict[int, SendPlan] = {}
    senders: list[int] = []
    for pid in active_order:
        plan = procs[pid].send_phase(round_no)
        # NO_SEND is the canonical silent plan; the identity test skips the
        # attribute loads for the (typically many) quiet processes.
        if plan is not NO_SEND and (plan.data or plan.control):
            plan.validate(pid, n, allow_control=allow_control, pids=pids)
            senders.append(pid)
        plans[pid] = plan

    # Phase 2: resolve this round's crashes against actual plans.
    resolved: dict[int, ResolvedCrash] = {}
    for pid, event in crash_events.items():
        if pid not in active:
            continue
        plan = plans[pid]
        rc = event.resolve(plan.data.keys(), plan.control, rng)
        resolved[pid] = rc
        if traced:
            trace.record(
                round_no,
                "crash",
                pid,
                point=event.point.value,
                data_subset=tuple(sorted(rc.data_subset)),
                control_prefix=rc.control_prefix,
            )

    # Crashed processes receive nothing this round.
    if resolved:
        crashing = set(resolved)
        receivers = active - crashing
        receiver_order = [pid for pid in active_order if pid not in crashing]
    else:
        receivers = active
        receiver_order = active_order

    # Phase 3: deliver.  Data step first, then control step (plan order).
    # Inbox containers are allocated lazily — only receivers that actually
    # hear something this round get a dict/set.
    data_in: dict[int, dict[int, Any]] = {}
    control_in: dict[int, set[int]] = {}

    if traced:
        _deliver_traced(
            senders, plans, resolved, receivers, round_no,
            stats, trace, data_in, control_in,
        )
    else:
        _deliver_fast(
            senders, plans, resolved, receivers,
            stats, data_in, control_in,
        )

    # Phase 4: receive + compute for the survivors.
    inboxes: dict[int, RoundInbox] = {}
    new_decisions: dict[int, Any] = {}
    get_data = data_in.get
    get_control = control_in.get
    for pid in receiver_order:
        data = get_data(pid)
        control = get_control(pid)
        if data is None and control is None:
            inbox = _EMPTY_INBOX
        else:
            inbox = RoundInbox(
                data={} if data is None else data,
                control=_NO_CONTROL if control is None else frozenset(control),
            )
        inboxes[pid] = inbox
        proc = procs[pid]
        proc.compute_phase(round_no, inbox)
        # Reads the SyncProcess decision slots directly: the two property
        # hops per process per round are measurable on n=128 grids.
        if proc._decided:
            new_decisions[pid] = proc._decision
            if traced:
                trace.record(round_no, "decide", pid, value=proc._decision)

    return RoundOutcome(
        round_no=round_no,
        plans=plans,
        resolved_crashes=resolved,
        inboxes=inboxes,
        new_decisions=new_decisions,
    )


def _deliver_traced(
    senders: list[int],
    plans: dict[int, SendPlan],
    resolved: dict[int, ResolvedCrash],
    receivers: set[int],
    round_no: int,
    stats: MessageStats,
    trace: Trace,
    data_in: dict[int, dict[int, Any]],
    control_in: dict[int, set[int]],
) -> None:
    """Per-message delivery: materializes every message, records every event."""
    for sender in senders:
        plan = plans[sender]
        rc = resolved.get(sender)
        if rc is None:
            data_dests = plan.data.keys()
            control_dests = plan.control
        else:
            data_dests = rc.data_subset
            control_dests = plan.control[: rc.control_prefix]

        for dest in sorted(data_dests):
            msg = Message(
                MessageKind.DATA, sender, dest, round_no, payload=plan.data[dest]
            )
            stats.on_send(msg)
            if dest in receivers:
                stats.on_deliver(msg)
                data_in.setdefault(dest, {})[sender] = plan.data[dest]
                trace.record(
                    round_no, "deliver.data", sender, dest=dest, payload=plan.data[dest]
                )
            else:
                trace.record(
                    round_no, "drop.data", sender, dest=dest, payload=plan.data[dest]
                )
        for dest in control_dests:
            msg = Message(MessageKind.CONTROL, sender, dest, round_no)
            stats.on_send(msg)
            if dest in receivers:
                stats.on_deliver(msg)
                control_in.setdefault(dest, set()).add(sender)
                trace.record(round_no, "deliver.control", sender, dest=dest)
            else:
                trace.record(round_no, "drop.control", sender, dest=dest)


def _deliver_fast(
    senders: list[int],
    plans: dict[int, SendPlan],
    resolved: dict[int, ResolvedCrash],
    receivers: set[int],
    stats: MessageStats,
    data_in: dict[int, dict[int, Any]],
    control_in: dict[int, set[int]],
) -> None:
    """Allocation-free delivery: no ``Message`` objects, bulk accounting.

    Totals are identical to :func:`_deliver_traced` — data bits are still
    sized per payload (memoized in :mod:`repro.net.payload`), only charged
    in one batch per (sender, step) instead of per message.
    """
    for sender in senders:
        plan = plans[sender]
        rc = resolved.get(sender)
        data = plan.data
        if rc is None:
            control_dests = plan.control
        else:
            control_dests = plan.control[: rc.control_prefix]
            if rc.data_subset:
                # Escaped subset only; preserve per-payload bit sizing.
                data = {dest: data[dest] for dest in rc.data_subset}
            else:
                data = None

        if data:
            sent_bits = 0
            delivered = 0
            delivered_bits = 0
            for dest, payload in data.items():
                bits = bit_size(payload)
                sent_bits += bits
                if dest in receivers:
                    delivered += 1
                    delivered_bits += bits
                    inbox = data_in.get(dest)
                    if inbox is None:
                        inbox = data_in[dest] = {}
                    inbox[sender] = payload
            stats.bulk_data(len(data), sent_bits)
            if delivered:
                stats.bulk_data(delivered, delivered_bits, delivered=True)

        if control_dests:
            delivered = 0
            for dest in control_dests:
                if dest in receivers:
                    delivered += 1
                    heard = control_in.get(dest)
                    if heard is None:
                        heard = control_in[dest] = set()
                    heard.add(sender)
            stats.bulk_control(len(control_dests), delivered)


class SynchronousEngine:
    """Extended-model engine: two-step send phase with ordered control step.

    Parameters
    ----------
    processes:
        The ``n`` processes, with pids exactly ``1..n`` (any order).
    schedule:
        Crash schedule for the run (defaults to failure-free).
    t:
        Resilience bound; the schedule must not crash more than ``t``.
    rng:
        Source used to resolve RANDOM subset/prefix policies.
    trace:
        Set ``False`` to disable event recording (large sweeps).
    """

    model_name = "extended"
    allow_control = True

    def __init__(
        self,
        processes: list[SyncProcess],
        schedule: CrashSchedule | None = None,
        *,
        t: int | None = None,
        rng: RandomSource | None = None,
        trace: bool = True,
    ) -> None:
        if not processes:
            raise ConfigurationError("no processes given")
        n = processes[0].n
        pids = sorted(p.pid for p in processes)
        if pids != list(range(1, n + 1)) or any(p.n != n for p in processes):
            raise ConfigurationError(
                f"processes must have pids exactly 1..n with a common n; got {pids}"
            )
        self.n = n
        self.t = n - 1 if t is None else t
        if not 0 <= self.t < n:
            raise ConfigurationError(f"t must satisfy 0 <= t < n, got t={self.t}, n={n}")
        self.procs: dict[int, SyncProcess] = {p.pid: p for p in processes}
        self.schedule = schedule if schedule is not None else CrashSchedule.none()
        self.schedule.validate(n, self.t)
        self.rng = rng
        self.stats = MessageStats()
        self.trace = Trace(enabled=trace)
        self._pids: frozenset[int] = frozenset(pids)
        self._active: set[int] = set(pids)
        self._active_order: list[int] = list(pids)  # kept sorted across steps
        self._crashes_by_round: dict[int, dict[int, CrashEvent]] = {}
        for ev in sorted(
            self.schedule.events.values(), key=lambda e: (e.round_no, e.pid)
        ):
            self._crashes_by_round.setdefault(ev.round_no, {})[ev.pid] = ev
        self._crashed_round: dict[int, int] = {}
        self._decided_round: dict[int, int] = {}
        self._proposals: dict[int, Any] = {
            pid: getattr(p, "proposal", None) for pid, p in self.procs.items()
        }
        self._round = 0

    # -- stepping -----------------------------------------------------------

    @property
    def round_no(self) -> int:
        """Number of rounds executed so far."""
        return self._round

    @property
    def active_pids(self) -> set[int]:
        """Processes still alive and undecided."""
        return set(self._active)

    def step(self) -> RoundOutcome:
        """Execute one round; mutates engine and process state."""
        if not self._active:
            raise SimulationError("step() called with no active processes")
        self._round += 1
        outcome = execute_round(
            self.procs,
            self._active,
            self._round,
            self._crashes_by_round.get(self._round, {}),
            allow_control=self.allow_control,
            stats=self.stats,
            trace=self.trace,
            rng=self.rng,
            n=self.n,
            pids=self._pids,
            active_order=self._active_order,
        )
        for pid in outcome.resolved_crashes:
            self._crashed_round[pid] = self._round
            self._active.discard(pid)
        for pid in outcome.new_decisions:
            self._decided_round[pid] = self._round
            self._active.discard(pid)
        if outcome.resolved_crashes or outcome.new_decisions:
            self._active_order = [
                pid for pid in self._active_order if pid in self._active
            ]
        return outcome

    def run(self, max_rounds: int | None = None) -> RunResult:
        """Run until every process decided or crashed, or ``max_rounds``.

        The default budget ``n + 1`` is safely above the paper's ``t + 1``
        worst case for every algorithm shipped here; exceeding it marks the
        run ``completed=False`` (the spec checker then reports a
        termination violation rather than looping forever).
        """
        budget = (self.n + 1) if max_rounds is None else max_rounds
        if budget < 1:
            raise ConfigurationError(f"max_rounds must be >= 1, got {budget}")
        while self._active and self._round < budget:
            self.step()
        return self.result()

    def result(self) -> RunResult:
        """Materialize the current :class:`~repro.sync.result.RunResult`."""
        outcomes: dict[int, ProcessOutcome] = {}
        for pid, proc in self.procs.items():
            outcomes[pid] = ProcessOutcome(
                pid=pid,
                proposal=self._proposals[pid],
                decided=proc.decided,
                decision=proc.decision if proc.decided else None,
                decided_round=self._decided_round.get(pid, 0),
                crashed=pid in self._crashed_round,
                crashed_round=self._crashed_round.get(pid, 0),
            )
        return RunResult(
            n=self.n,
            t=self.t,
            model=self.model_name,
            outcomes=outcomes,
            rounds_executed=self._round,
            completed=not self._active,
            stats=self.stats,
            trace=self.trace,
        )


class ClassicSynchronousEngine(SynchronousEngine):
    """Classic model: identical pipeline, control step forbidden.

    Suppressing the second sending step yields exactly the traditional
    round-based synchronous model (paper, Section 2.2), so the classic
    engine is the extended engine with ``allow_control=False`` — any plan
    carrying control destinations raises
    :class:`~repro.errors.ModelViolationError`.  DURING_CONTROL crash
    points are rejected up front since the step does not exist.
    """

    model_name = "classic"
    allow_control = False

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        for ev in self.schedule.events.values():
            if ev.point is CrashPoint.DURING_CONTROL:
                raise ConfigurationError(
                    f"p{ev.pid}: DURING_CONTROL crash point is not part of the classic model"
                )

"""Round engines for the classic and extended synchronous models.

The full round pipeline (Section 2.1 of the paper) is implemented once in
:func:`execute_round`, shared by both engine classes and by the
lower-bound explorer (which calls it on deep-copied process states while
enumerating adversary choices):

1. **Plan** — every live, undecided process produces its
   :class:`~repro.sync.api.SendPlan` *before any delivery*, enforcing the
   rule that round-``r`` messages depend only on rounds ``< r``.
2. **Resolve crashes** — the crash events scheduled for this round are
   resolved against the actual plans into concrete delivered
   subsets/prefixes (:class:`~repro.sync.crash.ResolvedCrash`).
3. **Deliver** — data messages first, then control messages in plan order
   (prefix-truncated for crashing senders).  Receivers that crash this
   round, already crashed, or already decided receive nothing.
4. **Compute** — every live, non-crashing, undecided process consumes its
   :class:`~repro.sync.api.RoundInbox`; new decisions are collected.

Message accounting: a message is *sent* if it escaped the crashing process
(i.e. will be delivered to a live receiver or would have been, had the
receiver been up) and *delivered* if a live, undecided, non-crashing
process actually consumed it.  Sends addressed to processes that already
crashed/decided still count as sent — the sender cannot know.

Two delivery paths implement identical semantics:

* **traced** (``trace.enabled``): one frozen :class:`Message` per
  (sender, dest) pair, recorded event by event — what tests and the
  analysis layer inspect;
* **fast** (tracing off — the sweep/benchmark default): no message
  objects at all.  Payloads are written straight into the per-receiver
  inbox dicts and accounting happens through the bulk
  :class:`MessageStats` interface, charging a round's traffic in
  aggregate exactly like the paper's counting arguments do.

The two paths produce identical :class:`RoundOutcome`/:class:`MessageStats`
(pinned by ``tests/sync/test_fastpath_parity.py``).

Orthogonally to the delivery path, the *hook* side of the round has two
modes.  Per-process stepping calls ``send_phase``/``compute_phase`` on
every process every round — two Python method dispatches per (process,
round), which PR 2 left as ~60% of the cascade kernel.  When every
process is of one type that registered a
:class:`~repro.sync.api.BatchedAlgorithm` table, the engine instead
builds the columnar table once and runs the whole round through
``send_phase_all``/``compute_phase_all`` — two calls per **round**, with
per-process state in parallel lists.  Crash resolution, delivery, and
inbox construction are shared verbatim between the modes, and decisions
are mirrored back onto the process objects, so batched and per-process
runs are byte-identical (``tests/sync/test_batched_parity.py``).

PR 9 adds a third hook mode on top: **vector** stepping through a
registered :class:`~repro.sync.api.VectorAlgorithm` table.  Per-process
state lives in array columns (numpy when installed, :mod:`array`
fallback), the send phase emits a sparse list of
:data:`~repro.sync.api.VectorSend` shapes instead of per-pid plan dicts,
and delivery/inboxes are skipped entirely — accounting is computed
straight off the send shapes and computation runs whole-column.  Only
available with tracing off; auto-detected by ``batched=None`` and forced
with ``batched="vector"``.  Decisions, stats, and results are
byte-identical to the other modes (``tests/sync/test_vector_parity.py``).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ConfigurationError, SimulationError
from repro.net.accounting import MessageStats
from repro.net.message import Message, MessageKind
from repro.net.payload import bit_size
from repro.sync.api import (
    EMPTY_INBOX,
    NO_SEND,
    BatchedAlgorithm,
    RoundInbox,
    SendPlan,
    SyncProcess,
    VectorAlgorithm,
    batched_table_for,
    vector_table_for,
)
from repro.sync.crash import CrashEvent, CrashPoint, CrashSchedule, ResolvedCrash
from repro.sync.result import ProcessOutcome, RunResult
from repro.util.rng import RandomSource
from repro.util.trace import Trace

#: Shared inbox constant: frozensets are immutable, so every receiver of a
#: control-free round can hold the same object without aliasing risk.
_NO_CONTROL: frozenset[int] = frozenset()

#: Shared inbox for receivers that heard nothing this round (canonically
#: defined in :mod:`repro.sync.api` so batched tables can identity-test it).
#: The data view is a read-only mapping proxy, so accidental mutation by an
#: algorithm raises instead of leaking between processes.
_EMPTY_INBOX = EMPTY_INBOX

__all__ = [
    "RoundOutcome",
    "execute_round",
    "SynchronousEngine",
    "ClassicSynchronousEngine",
]

#: Shared empty crash map for rounds without scheduled crashes (avoids one
#: dict allocation per step).  Never mutated.
_NO_CRASHES: dict[int, CrashEvent] = {}


@dataclass(slots=True)
class RoundOutcome:
    """What happened in one executed round."""

    round_no: int
    plans: dict[int, SendPlan]
    resolved_crashes: dict[int, ResolvedCrash]
    inboxes: dict[int, RoundInbox]
    new_decisions: dict[int, Any]


def execute_round(
    procs: Mapping[int, SyncProcess],
    active: set[int],
    round_no: int,
    crash_events: Mapping[int, CrashEvent],
    *,
    allow_control: bool,
    stats: MessageStats,
    trace: Trace,
    rng: RandomSource | None,
    n: int | None = None,
    pids: frozenset[int] | None = None,
    active_order: list[int] | None = None,
    table: BatchedAlgorithm | None = None,
    vtable: VectorAlgorithm | None = None,
) -> RoundOutcome:
    """Execute one round over ``active`` processes; mutates process state.

    ``crash_events`` maps pid → the event scheduled for *this* round (only
    pids in ``active`` matter; a process that already crashed or decided
    cannot crash again).  The caller updates the ``active`` set from the
    returned outcome.

    ``n``, ``pids`` (``frozenset(range(1, n + 1))``), and ``active_order``
    (``active`` in ascending pid order) are optional precomputed values:
    engines stepping many rounds pass them so each round neither
    rediscovers the system size, re-materializes the valid destination
    set for plan validation, nor re-sorts the active set.

    ``table`` switches the hook side of the round to batched stepping:
    the whole round's plans come from one ``send_phase_all`` call and the
    whole round's computation from one ``compute_phase_all`` call, with
    new decisions mirrored back onto the process objects.  Crash
    resolution, delivery, and inbox construction are identical in both
    modes.

    ``vtable`` (mutually exclusive with ``table``; requires tracing off)
    switches the *whole round* to vectorized stepping: sparse
    :data:`~repro.sync.api.VectorSend` tuples instead of plans, bulk
    accounting straight off the send shapes instead of delivery, and
    array-columnar computation instead of inboxes.  The returned
    outcome's ``plans``/``inboxes`` are empty in this mode (nothing was
    materialized); decisions, resolved crashes, stats totals, and all
    process-visible state are byte-identical to the other modes (pinned
    by ``tests/sync/test_vector_parity.py``).
    """
    if n is None:
        n = next(iter(procs.values())).n if procs else 0
    if vtable is not None:
        return _execute_round_vector(
            procs, active, round_no, crash_events,
            stats=stats, rng=rng, n=n, active_order=active_order, vtable=vtable,
        )
    traced = trace.enabled

    # Phase 1: collect send plans from every active process.  Senders with
    # anything to say are collected separately so delivery skips the
    # (typically many) silent processes entirely.
    if active_order is None:
        active_order = sorted(active)
    if table is not None:
        plans = table.send_phase_all(round_no, active_order)
        # One C-speed identity scan finds the (typically few) speakers.
        # Table plans are NOT re-validated: a registered table mirrors its
        # per-process class hook for hook (the parity grid runs the
        # validated per-process path against it), so validation here would
        # re-check first-party plans every round.
        senders = [
            pid
            for pid, plan in plans.items()
            if plan is not NO_SEND and (plan.data or plan.control)
        ]
    else:
        senders = []
        plans = {}
        for pid in active_order:
            plan = procs[pid].send_phase(round_no)
            # NO_SEND is the canonical silent plan; the identity test skips
            # the attribute loads for the (typically many) quiet processes.
            if plan is not NO_SEND and (plan.data or plan.control):
                plan.validate(pid, n, allow_control=allow_control, pids=pids)
                senders.append(pid)
            plans[pid] = plan

    # Phase 2: resolve this round's crashes against actual plans.
    resolved: dict[int, ResolvedCrash] = {}
    for pid, event in crash_events.items():
        if pid not in active:
            continue
        plan = plans[pid]
        rc = event.resolve(plan.data.keys(), plan.control, rng)
        resolved[pid] = rc
        if traced:
            trace.record(
                round_no,
                "crash",
                pid,
                point=event.point.value,
                data_subset=tuple(sorted(rc.data_subset)),
                control_prefix=rc.control_prefix,
            )

    # Crashed processes receive nothing this round.
    if resolved:
        crashing = set(resolved)
        if len(crashing) == 1:
            # One crash per round is the cascade shape: one C-level copy
            # and removal instead of an n-wide membership listcomp.
            receiver_order = active_order.copy()
            receiver_order.remove(next(iter(crashing)))
        else:
            receiver_order = [pid for pid in active_order if pid not in crashing]
    else:
        crashing = None
        receiver_order = active_order

    # Phase 3: deliver.  Data step first, then control step (plan order).
    # Inbox containers are allocated lazily — only receivers that actually
    # hear something this round get a dict/set.
    data_in: dict[int, dict[int, Any]] = {}
    control_in: dict[int, set[int]] = {}

    if traced:
        receivers = active if crashing is None else active - crashing
        _deliver_traced(
            senders, plans, resolved, receivers, round_no,
            stats, trace, data_in, control_in,
        )
    elif senders:
        _deliver_fast(
            senders, plans, resolved, active, crashing,
            stats, data_in, control_in,
        )

    # Phase 4: receive + compute for the survivors.
    inboxes: dict[int, RoundInbox] = {}
    get_data = data_in.get
    get_control = control_in.get
    if table is not None:
        # Build the inbox map from the (usually sparse) delivery side:
        # everyone starts empty, then only receivers that actually heard
        # something get a real inbox.  Key order stays receiver order.
        # Inboxes are built via __new__ + slot writes: the dataclass
        # __init__ costs ~3x as much and this runs once per hearing
        # receiver per round.
        new_inbox = RoundInbox.__new__
        inboxes = dict.fromkeys(receiver_order, _EMPTY_INBOX)
        for pid, data in data_in.items():
            control = get_control(pid)
            inbox = new_inbox(RoundInbox)
            inbox.data = data
            inbox.control = _NO_CONTROL if control is None else frozenset(control)
            inboxes[pid] = inbox
        if control_in:
            for pid, control in control_in.items():
                if pid not in data_in:
                    inbox = new_inbox(RoundInbox)
                    inbox.data = {}
                    inbox.control = frozenset(control)
                    inboxes[pid] = inbox
        new_decisions = table.compute_phase_all(round_no, inboxes)
        # Mirror decisions onto the process objects so `decided`/`decision`
        # views (user code holding the procs) stay true.  Slots are written
        # directly: `decide()` would re-check the double-decision guard the
        # engine already enforces by dropping deciders from the active set.
        for pid, value in new_decisions.items():
            proc = procs[pid]
            proc._decided = True
            proc._decision = value
            if traced:
                trace.record(round_no, "decide", pid, value=value)
    else:
        new_decisions = {}
        for pid in receiver_order:
            data = get_data(pid)
            control = get_control(pid)
            if data is None and control is None:
                inbox = _EMPTY_INBOX
            else:
                inbox = RoundInbox(
                    data={} if data is None else data,
                    control=_NO_CONTROL if control is None else frozenset(control),
                )
            inboxes[pid] = inbox
            proc = procs[pid]
            proc.compute_phase(round_no, inbox)
            # Reads the SyncProcess decision slots directly: the two property
            # hops per process per round are measurable on n=128 grids.
            if proc._decided:
                new_decisions[pid] = proc._decision
                if traced:
                    trace.record(round_no, "decide", pid, value=proc._decision)

    return RoundOutcome(
        round_no=round_no,
        plans=plans,
        resolved_crashes=resolved,
        inboxes=inboxes,
        new_decisions=new_decisions,
    )


def _deliver_traced(
    senders: list[int],
    plans: dict[int, SendPlan],
    resolved: dict[int, ResolvedCrash],
    receivers: set[int],
    round_no: int,
    stats: MessageStats,
    trace: Trace,
    data_in: dict[int, dict[int, Any]],
    control_in: dict[int, set[int]],
) -> None:
    """Per-message delivery: materializes every message, records every event."""
    for sender in senders:
        plan = plans[sender]
        rc = resolved.get(sender)
        if rc is None:
            data_dests = plan.data.keys()
            control_dests = plan.control
        else:
            data_dests = rc.data_subset
            control_dests = plan.control[: rc.control_prefix]

        for dest in sorted(data_dests):
            msg = Message(
                MessageKind.DATA, sender, dest, round_no, payload=plan.data[dest]
            )
            stats.on_send(msg)
            if dest in receivers:
                stats.on_deliver(msg)
                data_in.setdefault(dest, {})[sender] = plan.data[dest]
                trace.record(
                    round_no, "deliver.data", sender, dest=dest, payload=plan.data[dest]
                )
            else:
                trace.record(
                    round_no, "drop.data", sender, dest=dest, payload=plan.data[dest]
                )
        for dest in control_dests:
            msg = Message(MessageKind.CONTROL, sender, dest, round_no)
            stats.on_send(msg)
            if dest in receivers:
                stats.on_deliver(msg)
                control_in.setdefault(dest, set()).add(sender)
                trace.record(round_no, "deliver.control", sender, dest=dest)
            else:
                trace.record(round_no, "drop.control", sender, dest=dest)


def _deliver_fast(
    senders: list[int],
    plans: dict[int, SendPlan],
    resolved: dict[int, ResolvedCrash],
    active: set[int],
    crashing: set[int] | None,
    stats: MessageStats,
    data_in: dict[int, dict[int, Any]],
    control_in: dict[int, set[int]],
) -> None:
    """Allocation-free delivery: no ``Message`` objects, bulk accounting.

    Totals are identical to :func:`_deliver_traced` — data bits are still
    sized per payload (memoized in :mod:`repro.net.payload`), only charged
    in one batch per (sender, step) instead of per message.

    The receiver set is materialized lazily: a round whose only speaker
    crashed with nothing escaping (the cascade shape) never needs it.
    """
    receivers: set[int] | None = None
    for sender in senders:
        plan = plans[sender]
        rc = resolved.get(sender)
        data = plan.data
        if rc is None:
            control_dests = plan.control
        else:
            control_dests = plan.control[: rc.control_prefix]
            if rc.data_subset:
                # Escaped subset only; preserve per-payload bit sizing.
                data = {dest: data[dest] for dest in rc.data_subset}
            else:
                data = None

        if data or control_dests:
            if receivers is None:
                receivers = active if crashing is None else active - crashing

        if data:
            sent_bits = 0
            delivered = 0
            delivered_bits = 0
            # Broadcast plans map every destination to the *same* payload
            # object; one identity test then replaces the memo lookup.
            prev_payload: Any = _deliver_fast  # impossible payload sentinel
            bits = 0
            get_inbox = data_in.get
            for dest, payload in data.items():
                if payload is not prev_payload:
                    bits = bit_size(payload)
                    prev_payload = payload
                sent_bits += bits
                if dest in receivers:
                    delivered += 1
                    delivered_bits += bits
                    inbox = get_inbox(dest)
                    if inbox is None:
                        data_in[dest] = {sender: payload}
                    else:
                        inbox[sender] = payload
            stats.bulk_data(len(data), sent_bits)
            if delivered:
                stats.bulk_data(delivered, delivered_bits, delivered=True)

        if control_dests:
            delivered = 0
            for dest in control_dests:
                if dest in receivers:
                    delivered += 1
                    heard = control_in.get(dest)
                    if heard is None:
                        heard = control_in[dest] = set()
                    heard.add(sender)
            stats.bulk_control(len(control_dests), delivered)


# ---------------------------------------------------------------------------
# Vectorized round path (no plans, no delivery, no inboxes).
# ---------------------------------------------------------------------------


def _delivered_count(
    sender: int,
    dests: Any,
    receivers: set[int],
    receiver_order: list[int],
    n_minus_1: int,
) -> int:
    """``|dests ∩ receivers|`` without iterating the destinations.

    Exploits the shapes first-party vector tables emit: a ``range``
    (contiguous coordinator pattern — two bisects over the sorted
    receivers), the all-others broadcast tuple of length ``n - 1`` (one
    membership test), or — the rare truncated-crash case — an arbitrary
    small collection (generic membership loop).
    """
    tp = type(dests)
    if tp is range:
        if dests.step == 1:
            lo, hi = dests.start, dests.stop
        else:  # step == -1 (the descending COMMIT pattern)
            lo, hi = dests.stop + 1, dests.start + 1
        return bisect_left(receiver_order, hi) - bisect_left(receiver_order, lo)
    if tp is tuple and len(dests) == n_minus_1:
        return len(receivers) - (1 if sender in receivers else 0)
    return sum(d in receivers for d in dests)


def _account_vector(
    sends: list,
    receivers: set[int],
    receiver_order: list[int],
    n: int,
    stats: MessageStats,
) -> None:
    """Charge a vector round's traffic in aggregate.

    Totals are identical to routing the same round through
    :func:`_deliver_fast` — per-payload bit sizing (memoized), sent
    counts over the post-truncation destinations, delivered counts over
    the surviving receivers — just summed across senders before the
    (single) bulk calls.
    """
    data_sent = data_bits = data_del = data_del_bits = 0
    ctrl_sent = ctrl_del = 0
    n_minus_1 = n - 1
    for sender, dests, payload, control in sends:
        if dests:
            count = len(dests)
            bits = bit_size(payload)
            data_sent += count
            data_bits += bits * count
            d = _delivered_count(sender, dests, receivers, receiver_order, n_minus_1)
            if d:
                data_del += d
                data_del_bits += bits * d
        if control:
            ctrl_sent += len(control)
            ctrl_del += _delivered_count(
                sender, control, receivers, receiver_order, n_minus_1
            )
    if data_sent:
        stats.bulk_data(data_sent, data_bits)
    if data_del:
        stats.bulk_data(data_del, data_del_bits, delivered=True)
    if ctrl_sent:
        stats.bulk_control(ctrl_sent, ctrl_del)


def _execute_round_vector(
    procs: Mapping[int, SyncProcess],
    active: set[int],
    round_no: int,
    crash_events: Mapping[int, CrashEvent],
    *,
    stats: MessageStats,
    rng: RandomSource | None,
    n: int,
    active_order: list[int] | None,
    vtable: VectorAlgorithm,
) -> RoundOutcome:
    """One round through a :class:`~repro.sync.api.VectorAlgorithm` table.

    Same four phases as :func:`execute_round`, reshaped around the sparse
    send list: crashes resolve against each crashing sender's send tuple
    (same rng draws — resolution only observes the destination *set* and
    the control length), truncation rewrites the affected tuples in
    place of delivery, and accounting/computation run off the shapes.
    Only ever called with tracing off (engines enforce it).
    """
    if active_order is None:
        active_order = sorted(active)
    sends = vtable.send_phase_vector(round_no, active_order)

    resolved: dict[int, ResolvedCrash] = {}
    if crash_events:
        send_by_pid = {s[0]: s for s in sends}
        for pid, event in crash_events.items():
            if pid not in active:
                continue
            s = send_by_pid.get(pid)
            if s is None:
                resolved[pid] = event.resolve((), (), rng)
            else:
                resolved[pid] = event.resolve(s[1], s[3], rng)

    if resolved:
        crashing = set(resolved)
        if len(crashing) == 1:
            receiver_order = active_order.copy()
            receiver_order.remove(next(iter(crashing)))
        else:
            receiver_order = [pid for pid in active_order if pid not in crashing]
        receivers = active - crashing
        if sends:
            truncated = []
            for s in sends:
                rc = resolved.get(s[0])
                if rc is None:
                    truncated.append(s)
                else:
                    control = s[3][: rc.control_prefix]
                    if rc.data_subset or control:
                        truncated.append((s[0], rc.data_subset, s[2], control))
            sends = truncated
    else:
        crashing = None
        receiver_order = active_order
        receivers = active

    if sends:
        _account_vector(sends, receivers, receiver_order, n, stats)

    new_decisions = vtable.compute_phase_vector(
        round_no, receivers, receiver_order, sends, crashing is None
    )
    # Same direct slot mirroring as batched stepping (tracing is off here
    # by construction, so no decide events to record).
    for pid, value in new_decisions.items():
        proc = procs[pid]
        proc._decided = True
        proc._decision = value

    return RoundOutcome(
        round_no=round_no,
        plans={},
        resolved_crashes=resolved,
        inboxes={},
        new_decisions=new_decisions,
    )


class SynchronousEngine:
    """Extended-model engine: two-step send phase with ordered control step.

    Parameters
    ----------
    processes:
        The ``n`` processes, with pids exactly ``1..n`` (any order).
    schedule:
        Crash schedule for the run (defaults to failure-free).
    t:
        Resilience bound; the schedule must not crash more than ``t``.
    rng:
        Source used to resolve RANDOM subset/prefix policies.
    trace:
        Set ``False`` to disable event recording (large sweeps).
    batched:
        ``None`` (default) auto-detects the fastest eligible stepping
        mode: with tracing off, a registered
        :class:`~repro.sync.api.VectorAlgorithm` table (array-columnar
        state, sparse sends, bulk accounting) wins; otherwise a
        registered :class:`~repro.sync.api.BatchedAlgorithm` table
        (list-columnar, two hook calls per round); otherwise per-process
        stepping.  ``"vector"`` requires the vector table (and tracing
        off) and raises when unavailable; ``True`` requires the
        list-batched table; ``False`` forces per-process stepping (the
        parity grids compare the modes).  While stepping through either
        table, the table is the authoritative copy of algorithm state —
        decisions are mirrored back to the process objects, other
        per-process attributes are not.
    """

    model_name = "extended"
    allow_control = True

    def __init__(
        self,
        processes: list[SyncProcess],
        schedule: CrashSchedule | None = None,
        *,
        t: int | None = None,
        rng: RandomSource | None = None,
        trace: bool = True,
        batched: bool | str | None = None,
    ) -> None:
        if not processes:
            raise ConfigurationError("no processes given")
        n = processes[0].n
        self.n = n
        self.t = n - 1 if t is None else t
        if not 0 <= self.t < n:
            raise ConfigurationError(f"t must satisfy 0 <= t < n, got t={self.t}, n={n}")
        self._pids: frozenset[int] = frozenset(range(1, n + 1))
        self._install(processes, schedule, rng=rng, trace=trace, batched=batched)

    def _install(
        self,
        processes: list[SyncProcess],
        schedule: CrashSchedule | None,
        *,
        rng: RandomSource | None,
        trace: bool,
        batched: bool | str | None,
    ) -> None:
        """Per-run wiring shared by construction and :meth:`reset`."""
        n = self.n
        # One pass collects pids, the pid->proc map, and the proposal
        # snapshot; the sorted-pids comparison below then validates shape.
        procs: dict[int, SyncProcess] = {}
        proposals: dict[int, Any] = {}
        common_n = True
        for p in processes:
            procs[p.pid] = p
            proposals[p.pid] = getattr(p, "proposal", None)
            common_n &= p.n == n
        pids = sorted(procs)
        if (
            not common_n
            or len(procs) != len(processes)
            or pids != list(range(1, n + 1))
        ):
            pids = sorted(p.pid for p in processes)
            raise ConfigurationError(
                f"processes must have pids exactly 1..n with a common n; got {pids}"
            )
        self.procs = procs
        self._proposals = proposals
        self._table: BatchedAlgorithm | None = None
        self._vtable: VectorAlgorithm | None = None
        if batched == "vector":
            if trace:
                raise ConfigurationError(
                    'batched="vector" requires tracing off: the vector path '
                    "materializes no per-message events to record"
                )
            self._vtable = vector_table_for(processes)
            if self._vtable is None:
                raise ConfigurationError(
                    f'batched="vector" but {type(processes[0]).__name__} has '
                    f"no registered vector table (or this workload is "
                    f"ineligible for columnar state)"
                )
        elif batched is None:
            # Auto-detect, fastest eligible mode first.  The vector path
            # needs tracing off; ineligible workloads (vector factory
            # returns None) degrade to the list-batched table, then to
            # per-process stepping.
            if not trace:
                self._vtable = vector_table_for(processes)
            if self._vtable is None:
                self._table = batched_table_for(processes)
        elif batched:
            self._table = batched_table_for(processes)
            if self._table is None:
                raise ConfigurationError(
                    f"batched=True but {type(processes[0]).__name__} has no "
                    f"registered batched table"
                )
        self._begin_run(schedule, rng=rng, trace=trace)

    def _begin_run(
        self,
        schedule: CrashSchedule | None,
        *,
        rng: RandomSource | None,
        trace: bool,
    ) -> None:
        """Arm the per-run state: schedule, stats, trace, ledgers, round 0.

        Shared by construction, :meth:`reset` (fresh process table), and
        :meth:`refill` (retained process table, refilled columns).
        """
        self.schedule = schedule if schedule is not None else CrashSchedule.none()
        self.schedule.validate(self.n, self.t)
        if not self.allow_control:
            for ev in self.schedule.events.values():
                if ev.point is CrashPoint.DURING_CONTROL:
                    raise ConfigurationError(
                        f"p{ev.pid}: DURING_CONTROL crash point is not part of "
                        f"the classic model"
                    )
        self.rng = rng
        self.stats = MessageStats()
        self.trace = Trace(enabled=trace)
        pids = range(1, self.n + 1)
        self._active: set[int] = set(pids)
        self._active_order: list[int] = list(pids)  # kept sorted across steps
        self._crashes_by_round: dict[int, dict[int, CrashEvent]] = {}
        for ev in sorted(
            self.schedule.events.values(), key=lambda e: (e.round_no, e.pid)
        ):
            self._crashes_by_round.setdefault(ev.round_no, {})[ev.pid] = ev
        self._crashed_round: dict[int, int] = {}
        self._decided_round: dict[int, int] = {}
        self._decisions: dict[int, Any] = {}
        self._round = 0

    def reset(
        self,
        processes: list[SyncProcess],
        schedule: CrashSchedule | None = None,
        *,
        rng: RandomSource | None = None,
        trace: bool = False,
        batched: bool | str | None = None,
    ) -> "SynchronousEngine":
        """Rewire for a fresh run over ``processes``; return ``self``.

        Reuses the engine skeleton — ``n``, ``t``, the model flags, the
        valid-pid frozenset — and reinstalls everything per-run exactly
        as construction would: new process table (same shape, freshly
        constructed state), new schedule (re-validated), fresh stats,
        trace, ledgers, round counter, and batched table.  A reset engine
        produces byte-identical results to a freshly constructed one
        (pinned by ``tests/scenarios/test_engine_reuse.py``); the
        engine-lease path of the scenario layer leans on this to
        amortize engine setup across the cells of a sweep chunk.

        Note the default ``trace=False`` (construction defaults to
        ``True``): reuse exists for sweep-style bulk execution, which
        pins the allocation-free fast path.
        """
        if not processes:
            raise ConfigurationError("no processes given")
        if processes[0].n != self.n:
            raise ConfigurationError(
                f"reset() requires the constructed shape n={self.n}, "
                f"got processes with n={processes[0].n}"
            )
        self._install(processes, schedule, rng=rng, trace=trace, batched=batched)
        return self

    def refill(
        self,
        proposals: list[Any],
        schedule: CrashSchedule | None = None,
        *,
        rng: RandomSource | None = None,
        trace: bool = False,
    ) -> bool:
        """Rearm for a fresh run **without** a new process table.

        The factory-free sibling of :meth:`reset`: when the engine steps
        through a batched table that advertises ``refill``
        (:attr:`~repro.sync.api.BatchedAlgorithm.supports_refill`), the
        table's columns are rewritten in place from ``proposals`` and the
        per-run state is re-armed — no ``n``-object process construction,
        no table rebuild.  Returns False (taking no action) when the
        engine has no refillable table; the caller then falls back to the
        factory + :meth:`reset` path.

        While stepping batched, the table is the authoritative copy of
        algorithm state, so the retained process objects only serve as
        decision mirrors: their decision slots are re-armed here, their
        algorithm attributes (estimates, value sets) keep the previous
        run's values.  Refilled runs are byte-identical to fresh ones
        (pinned by ``tests/scenarios/test_columnar_parity.py``).
        """
        table = self._vtable if self._vtable is not None else self._table
        if table is None or not table.supports_refill:
            return False
        if len(proposals) != self.n:
            raise ConfigurationError(
                f"refill() needs {self.n} proposals, got {len(proposals)}"
            )
        if not table.refill(proposals):
            return False
        proposal_map = self._proposals
        for pid, proc in self.procs.items():
            proc._decided = False
            proc._decision = None
            proposal_map[pid] = proposals[pid - 1]
        self._begin_run(schedule, rng=rng, trace=trace)
        return True

    # -- stepping -----------------------------------------------------------

    @property
    def round_no(self) -> int:
        """Number of rounds executed so far."""
        return self._round

    @property
    def active_pids(self) -> set[int]:
        """Processes still alive and undecided."""
        return set(self._active)

    @property
    def decisions(self) -> dict[int, Any]:
        """pid → decided value, as recorded by the engine's own ledger."""
        return dict(self._decisions)

    @property
    def decision_rounds(self) -> dict[int, int]:
        """pid → round in which the decision landed."""
        return dict(self._decided_round)

    @property
    def crashed_rounds(self) -> dict[int, int]:
        """pid → round in which the process crashed."""
        return dict(self._crashed_round)

    def step(self) -> RoundOutcome:
        """Execute one round; mutates engine and process state."""
        if not self._active:
            raise SimulationError("step() called with no active processes")
        self._round += 1
        outcome = execute_round(
            self.procs,
            self._active,
            self._round,
            self._crashes_by_round.get(self._round, _NO_CRASHES),
            allow_control=self.allow_control,
            stats=self.stats,
            trace=self.trace,
            rng=self.rng,
            n=self.n,
            pids=self._pids,
            active_order=self._active_order,
            table=self._table,
            vtable=self._vtable,
        )
        for pid in outcome.resolved_crashes:
            self._crashed_round[pid] = self._round
            self._active.discard(pid)
        new_decisions = outcome.new_decisions
        if new_decisions:
            if len(new_decisions) <= 2:
                for pid, value in new_decisions.items():
                    self._decided_round[pid] = self._round
                    self._decisions[pid] = value
                    self._active.discard(pid)
            else:
                # Mass-decision rounds (the cascade's last round, flooding
                # horizons): three C-level bulk updates instead of 3n
                # Python-loop operations.
                self._decisions.update(new_decisions)
                self._decided_round.update(dict.fromkeys(new_decisions, self._round))
                self._active.difference_update(new_decisions)
        removed = len(outcome.resolved_crashes) + len(outcome.new_decisions)
        if removed:
            if removed <= 2:
                # The common cascade shape: one crash or one decision per
                # round.  list.remove is one C-level scan; rebuilding the
                # whole order would re-touch every surviving pid.
                for pid in outcome.resolved_crashes:
                    self._active_order.remove(pid)
                for pid in outcome.new_decisions:
                    self._active_order.remove(pid)
            else:
                self._active_order = [
                    pid for pid in self._active_order if pid in self._active
                ]
        return outcome

    def run(self, max_rounds: int | None = None) -> RunResult:
        """Run until every process decided or crashed, or ``max_rounds``.

        The default budget ``n + 1`` is safely above the paper's ``t + 1``
        worst case for every algorithm shipped here; exceeding it marks the
        run ``completed=False`` (the spec checker then reports a
        termination violation rather than looping forever).
        """
        budget = (self.n + 1) if max_rounds is None else max_rounds
        if budget < 1:
            raise ConfigurationError(f"max_rounds must be >= 1, got {budget}")
        while self._active and self._round < budget:
            self.step()
        return self.result()

    def result(self) -> RunResult:
        """Materialize the current :class:`~repro.sync.result.RunResult`."""
        outcomes: dict[int, ProcessOutcome] = {}
        # Decision values/rounds and crash rounds come from the engine's own
        # ledgers (identical in per-process and batched mode) rather than
        # from process attributes — no property hops over n processes.
        decisions = self._decisions
        decided_round = self._decided_round
        crashed_round = self._crashed_round
        for pid in self.procs:
            decided = pid in decisions
            # Positional construction: keyword passing costs ~40% more and
            # this loop builds n outcomes per run on the benchmark path.
            outcomes[pid] = ProcessOutcome(
                pid,
                self._proposals[pid],
                decided,
                decisions[pid] if decided else None,
                decided_round.get(pid, 0),
                pid in crashed_round,
                crashed_round.get(pid, 0),
            )
        return RunResult(
            n=self.n,
            t=self.t,
            model=self.model_name,
            outcomes=outcomes,
            rounds_executed=self._round,
            completed=not self._active,
            stats=self.stats,
            trace=self.trace,
        )


class ClassicSynchronousEngine(SynchronousEngine):
    """Classic model: identical pipeline, control step forbidden.

    Suppressing the second sending step yields exactly the traditional
    round-based synchronous model (paper, Section 2.2), so the classic
    engine is the extended engine with ``allow_control=False`` — any plan
    carrying control destinations raises
    :class:`~repro.errors.ModelViolationError`.  DURING_CONTROL crash
    points are rejected up front since the step does not exist.
    """

    model_name = "classic"
    allow_control = False

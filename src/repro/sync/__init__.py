"""Synchronous round-based engines (classic and extended models)."""

from repro.sync.adversary import (
    Adversary,
    CommitSplitter,
    CoordinatorKiller,
    MaxTrafficCascade,
    NoCrash,
    RandomCrashes,
    StaggeredKiller,
)
from repro.sync.api import NO_SEND, RoundInbox, SendPlan, SyncProcess
from repro.sync.crash import (
    CrashEvent,
    CrashPoint,
    CrashSchedule,
    Prefix,
    ResolvedCrash,
    Subset,
)
from repro.sync.engine import (
    ClassicSynchronousEngine,
    RoundOutcome,
    SynchronousEngine,
    execute_round,
)
from repro.sync.extended import ExtendedSynchronousEngine
from repro.sync.result import ProcessOutcome, RunResult
from repro.sync.spec import SpecReport, assert_consensus, check_consensus

__all__ = [
    "Adversary",
    "CommitSplitter",
    "CoordinatorKiller",
    "MaxTrafficCascade",
    "NoCrash",
    "RandomCrashes",
    "StaggeredKiller",
    "NO_SEND",
    "RoundInbox",
    "SendPlan",
    "SyncProcess",
    "CrashEvent",
    "CrashPoint",
    "CrashSchedule",
    "Prefix",
    "ResolvedCrash",
    "Subset",
    "ClassicSynchronousEngine",
    "RoundOutcome",
    "SynchronousEngine",
    "execute_round",
    "ExtendedSynchronousEngine",
    "ProcessOutcome",
    "RunResult",
    "SpecReport",
    "assert_consensus",
    "check_consensus",
]

"""Crash events, delivery policies, and crash schedules.

The paper's failure model is crash-stop, with round-granular adversary
power over *what escapes* a crashing process:

* crash **before the send phase** — nothing of round ``r`` is sent;
* crash **during the data step** — an *arbitrary subset* of the planned
  data messages is delivered (adversary's choice); **no** control message
  is sent (the control step strictly follows the data step);
* crash **during the control step** — *all* data messages were sent, and
  the control message reaches an *ordered prefix* of the planned
  destination sequence (adversary picks the prefix length);
* crash **after the send phase** — everything was sent, but the process
  performs no receive/compute in its crash round (so a coordinator that
  crashes "just after line 5" never executes the paper's line-6 decide).

A crashed process neither receives nor computes in its crash round and is
silent forever after.  :class:`CrashEvent` describes one crash; subset and
prefix choices may be given explicitly (lower-bound explorer, worst-case
certificates) or left to a policy the engine resolves at runtime against
the actual :class:`~repro.sync.api.SendPlan` (random adversaries).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import ConfigurationError
from repro.util.rng import RandomSource

__all__ = ["CrashPoint", "Subset", "Prefix", "CrashEvent", "ResolvedCrash", "CrashSchedule"]


class CrashPoint(enum.Enum):
    """Where within its crash round a process stops."""

    BEFORE_SEND = "before_send"
    DURING_DATA = "during_data"
    DURING_CONTROL = "during_control"
    AFTER_SEND = "after_send"


class Subset(enum.Enum):
    """Data-step delivery policy when the explicit subset is not given."""

    NONE = "none"  # nobody receives
    ALL = "all"  # everybody planned receives (crash hits at the very end)
    RANDOM = "random"  # uniform independent inclusion


class Prefix(enum.Enum):
    """Control-step delivery policy when the explicit prefix is not given."""

    NONE = "none"
    ALL = "all"
    RANDOM = "random"


@dataclass(slots=True, unsafe_hash=True)
class CrashEvent:
    """One scheduled crash.

    ``data_subset`` (ids) and ``control_prefix`` (count) take precedence over
    the corresponding policies when not ``None``.  An explicit subset is
    intersected with the actually-planned destinations; an explicit prefix
    is clamped to the planned sequence length.

    Treat instances as immutable (adversaries build one per crash per
    run; not ``frozen`` for the same construction-cost reason as
    :class:`~repro.sync.result.ProcessOutcome`).
    """

    pid: int
    round_no: int
    point: CrashPoint
    data_subset: frozenset[int] | None = None
    data_policy: Subset = Subset.RANDOM
    control_prefix: int | None = None
    control_policy: Prefix = Prefix.RANDOM

    def __post_init__(self) -> None:
        if self.round_no < 1:
            raise ConfigurationError(f"crash round must be >= 1, got {self.round_no}")
        if self.pid < 1:
            raise ConfigurationError(f"pid must be >= 1, got {self.pid}")
        if self.control_prefix is not None and self.control_prefix < 0:
            raise ConfigurationError("control_prefix must be >= 0")

    # -- resolution against an actual plan ---------------------------------

    def resolve(
        self,
        planned_data: Iterable[int],
        planned_control: tuple[int, ...],
        rng: RandomSource | None,
    ) -> "ResolvedCrash":
        """Fix subset/prefix choices for this round's actual plan.

        Only the RANDOM subset policy observes the *order* of
        ``planned_data`` (its rng draws are made against the sorted ids,
        keeping resolution independent of plan-dict ordering); every other
        branch builds order-insensitive frozensets, so the sort is paid
        only where a draw depends on it.
        """
        if self.point is CrashPoint.BEFORE_SEND:
            subset: frozenset[int] = frozenset()
            prefix = 0
        elif self.point is CrashPoint.DURING_DATA:
            subset = self._resolve_subset(planned_data, rng)
            prefix = 0
        elif self.point is CrashPoint.DURING_CONTROL:
            subset = frozenset(planned_data)
            prefix = self._resolve_prefix(len(planned_control), rng)
        else:  # AFTER_SEND
            subset = frozenset(planned_data)
            prefix = len(planned_control)
        return ResolvedCrash(pid=self.pid, point=self.point, data_subset=subset, control_prefix=prefix)

    def _resolve_subset(
        self, planned: Iterable[int], rng: RandomSource | None
    ) -> frozenset[int]:
        if self.data_subset is not None:
            return frozenset(self.data_subset) & frozenset(planned)
        if self.data_policy is Subset.NONE:
            return frozenset()
        if self.data_policy is Subset.ALL:
            return frozenset(planned)
        if rng is None:
            raise ConfigurationError(
                "random data-subset policy needs an engine RandomSource"
            )
        return frozenset(rng.subset(sorted(planned), 0.5))

    def _resolve_prefix(self, planned_len: int, rng: RandomSource | None) -> int:
        if self.control_prefix is not None:
            return min(self.control_prefix, planned_len)
        if self.control_policy is Prefix.NONE:
            return 0
        if self.control_policy is Prefix.ALL:
            return planned_len
        if rng is None:
            raise ConfigurationError(
                "random control-prefix policy needs an engine RandomSource"
            )
        return rng.randint(0, planned_len)


@dataclass(slots=True, unsafe_hash=True)
class ResolvedCrash:
    """A crash with its delivery choices pinned for the current round.

    Treat instances as immutable (engines build one per crash per round).
    """

    pid: int
    point: CrashPoint
    data_subset: frozenset[int]
    control_prefix: int


class CrashSchedule:
    """At most one :class:`CrashEvent` per process for a whole run."""

    def __init__(self, events: Iterable[CrashEvent] = ()) -> None:
        self._by_pid: dict[int, CrashEvent] = {}
        for ev in events:
            if ev.pid in self._by_pid:
                raise ConfigurationError(f"process p{ev.pid} scheduled to crash twice")
            self._by_pid[ev.pid] = ev

    @classmethod
    def none(cls) -> "CrashSchedule":
        """The failure-free schedule."""
        return cls(())

    @property
    def events(self) -> Mapping[int, CrashEvent]:
        """pid → crash event."""
        return dict(self._by_pid)

    @property
    def crash_count(self) -> int:
        """``f``: the number of processes that crash in this schedule."""
        return len(self._by_pid)

    def crashes_in_round(self, round_no: int) -> list[CrashEvent]:
        """Events scheduled for ``round_no`` (ordered by pid)."""
        return sorted(
            (ev for ev in self._by_pid.values() if ev.round_no == round_no),
            key=lambda ev: ev.pid,
        )

    def event_for(self, pid: int) -> CrashEvent | None:
        """The crash event of ``pid``, if any."""
        return self._by_pid.get(pid)

    def validate(self, n: int, t: int) -> None:
        """Check the schedule fits an ``(n, t)`` system."""
        if len(self._by_pid) > t:
            raise ConfigurationError(
                f"schedule crashes {len(self._by_pid)} processes but t={t}"
            )
        for ev in self._by_pid.values():
            if ev.pid > n:
                raise ConfigurationError(f"crash event for p{ev.pid} but n={n}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"p{ev.pid}@r{ev.round_no}:{ev.point.value}"
            for ev in sorted(self._by_pid.values(), key=lambda e: (e.round_no, e.pid))
        )
        return f"CrashSchedule({parts or 'failure-free'})"

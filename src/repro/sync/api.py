"""Process-facing API of the round-based synchronous models.

A :class:`SyncProcess` is driven by an engine through exactly two hooks per
round:

1. :meth:`SyncProcess.send_phase` — returns a :class:`SendPlan`: the data
   messages (dest → payload) and the *ordered* control-message destination
   sequence for this round.  The engine calls it **before** delivering
   anything, which structurally enforces the model rule that a round's
   outgoing messages may depend only on previous rounds ("no local
   computation is allowed to take place between the two sending steps").

2. :meth:`SyncProcess.compute_phase` — receives a :class:`RoundInbox` with
   everything delivered to the process this round and performs the round's
   local computation, possibly calling :meth:`SyncProcess.decide`.

Deciding models the paper's ``return`` statement: the process terminates and
takes no further part in the run.  The classic model is the special case in
which every plan has an empty control sequence (engines enforce this).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ConfigurationError, ModelViolationError

__all__ = ["SendPlan", "RoundInbox", "SyncProcess", "NO_SEND"]


@dataclass(frozen=True, slots=True)
class SendPlan:
    """What one process intends to send in one round.

    Attributes
    ----------
    data:
        Mapping destination id → payload for the data step.  At most one
        data message per channel per round (model invariant).
    control:
        Ordered tuple of destination ids for the control step.  Order
        matters: on a crash during this step, an *ordered prefix* is
        delivered.  At most one control message per channel per round, so
        destinations must be distinct.
    """

    data: Mapping[int, Any] = field(default_factory=dict)
    control: tuple[int, ...] = ()

    def validate(
        self,
        pid: int,
        n: int,
        allow_control: bool,
        *,
        pids: frozenset[int] | None = None,
    ) -> None:
        """Check the plan against model rules; raise on violation.

        ``pids`` is an optional precomputed ``frozenset(range(1, n + 1))``:
        engines validating every plan of every round pass it so the
        destination checks run as C-level set comparisons instead of a
        Python loop per destination; the slow per-destination loop is kept
        only to produce the precise error message on violation.
        """
        if pids is not None:
            data_ok = not self.data or (
                pid not in self.data and self.data.keys() <= pids
            )
        else:
            data_ok = all(1 <= dest <= n and dest != pid for dest in self.data)
        if not data_ok:
            for dest in self.data:
                if not (1 <= dest <= n) or dest == pid:
                    raise ModelViolationError(
                        f"p{pid}: invalid data destination {dest} (n={n})"
                    )
        if self.control:
            if not allow_control:
                raise ModelViolationError(
                    f"p{pid}: control messages are not part of the classic model"
                )
            dests = set(self.control)
            if len(dests) != len(self.control):
                raise ModelViolationError(
                    f"p{pid}: duplicate control destinations {self.control}"
                )
            if pid in dests or not (
                dests <= pids if pids is not None
                else all(1 <= dest <= n for dest in dests)
            ):
                for dest in self.control:
                    if not (1 <= dest <= n) or dest == pid:
                        raise ModelViolationError(
                            f"p{pid}: invalid control destination {dest} (n={n})"
                        )


#: Shared empty plan for rounds in which a process stays silent.
NO_SEND = SendPlan()


@dataclass(frozen=True, slots=True)
class RoundInbox:
    """Everything delivered to one process in one round.

    Attributes
    ----------
    data:
        sender id → payload, for data messages received this round.
    control:
        ids of processes whose control (synchronization) message arrived.
    """

    data: Mapping[int, Any] = field(default_factory=dict)
    control: frozenset[int] = frozenset()

    @property
    def empty(self) -> bool:
        """True when nothing at all was received this round."""
        return not self.data and not self.control


class SyncProcess(abc.ABC):
    """Base class for processes of the (classic or extended) round model.

    Subclasses implement :meth:`send_phase` and :meth:`compute_phase`.
    State must live in instance attributes so runs can be snapshotted by
    the lower-bound explorer via ``copy.deepcopy``.
    """

    def __init__(self, pid: int, n: int) -> None:
        if not 1 <= pid <= n:
            raise ConfigurationError(f"pid must be in 1..{n}, got {pid}")
        if n < 2:
            raise ConfigurationError(f"need at least 2 processes, got n={n}")
        self.pid = pid
        self.n = n
        self._decision: Any = None
        self._decided = False
        self._decision_round = 0

    # -- hooks ------------------------------------------------------------

    @abc.abstractmethod
    def send_phase(self, round_no: int) -> SendPlan:
        """Produce this round's :class:`SendPlan` (may not inspect inbox)."""

    @abc.abstractmethod
    def compute_phase(self, round_no: int, inbox: RoundInbox) -> None:
        """Consume this round's :class:`RoundInbox`; may call :meth:`decide`."""

    # -- decision ---------------------------------------------------------

    def decide(self, value: Any) -> None:
        """Decide ``value`` (the paper's ``return``); idempotence not allowed.

        The engine observes the decision after the hook returns, records the
        round, and removes the process from the run.
        """
        if self._decided:
            raise ModelViolationError(f"p{self.pid} decided twice")
        self._decided = True
        self._decision = value

    @property
    def decided(self) -> bool:
        """Whether :meth:`decide` has been called."""
        return self._decided

    @property
    def decision(self) -> Any:
        """The decided value (only meaningful when :attr:`decided`)."""
        return self._decision

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"decided={self._decision!r}" if self._decided else "running"
        return f"{type(self).__name__}(pid={self.pid}, n={self.n}, {state})"

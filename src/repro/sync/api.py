"""Process-facing API of the round-based synchronous models.

A :class:`SyncProcess` is driven by an engine through exactly two hooks per
round:

1. :meth:`SyncProcess.send_phase` — returns a :class:`SendPlan`: the data
   messages (dest → payload) and the *ordered* control-message destination
   sequence for this round.  The engine calls it **before** delivering
   anything, which structurally enforces the model rule that a round's
   outgoing messages may depend only on previous rounds ("no local
   computation is allowed to take place between the two sending steps").

2. :meth:`SyncProcess.compute_phase` — receives a :class:`RoundInbox` with
   everything delivered to the process this round and performs the round's
   local computation, possibly calling :meth:`SyncProcess.decide`.

Deciding models the paper's ``return`` statement: the process terminates and
takes no further part in the run.  The classic model is the special case in
which every plan has an empty control sequence (engines enforce this).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ConfigurationError, ModelViolationError

__all__ = [
    "SendPlan",
    "RoundInbox",
    "SyncProcess",
    "NO_SEND",
    "EMPTY_INBOX",
    "BatchedAlgorithm",
    "register_batched_table",
    "batched_table_for",
    "batched_table_refillable",
    "VectorSend",
    "VectorAlgorithm",
    "register_vector_table",
    "vector_table_for",
]


@dataclass(slots=True, unsafe_hash=True)
class SendPlan:
    """What one process intends to send in one round.

    Attributes
    ----------
    data:
        Mapping destination id → payload for the data step.  At most one
        data message per channel per round (model invariant).
    control:
        Ordered tuple of destination ids for the control step.  Order
        matters: on a crash during this step, an *ordered prefix* is
        delivered.  At most one control message per channel per round, so
        destinations must be distinct.

    Treat instances as immutable — :data:`NO_SEND` in particular is one
    shared object.  Not ``frozen``: flooding algorithms build ``n`` plans
    per round and a frozen dataclass pays ``object.__setattr__`` per
    field on every construction (same trade as
    :class:`~repro.sync.result.ProcessOutcome`).
    """

    data: Mapping[int, Any] = field(default_factory=dict)
    control: tuple[int, ...] = ()

    def validate(
        self,
        pid: int,
        n: int,
        allow_control: bool,
        *,
        pids: frozenset[int] | None = None,
    ) -> None:
        """Check the plan against model rules; raise on violation.

        ``pids`` is an optional precomputed ``frozenset(range(1, n + 1))``:
        engines validating every plan of every round pass it so the
        destination checks run as C-level set comparisons instead of a
        Python loop per destination; the slow per-destination loop is kept
        only to produce the precise error message on violation.
        """
        if pids is not None:
            data_ok = not self.data or (
                pid not in self.data and self.data.keys() <= pids
            )
        else:
            data_ok = all(1 <= dest <= n and dest != pid for dest in self.data)
        if not data_ok:
            for dest in self.data:
                if not (1 <= dest <= n) or dest == pid:
                    raise ModelViolationError(
                        f"p{pid}: invalid data destination {dest} (n={n})"
                    )
        if self.control:
            if not allow_control:
                raise ModelViolationError(
                    f"p{pid}: control messages are not part of the classic model"
                )
            dests = set(self.control)
            if len(dests) != len(self.control):
                raise ModelViolationError(
                    f"p{pid}: duplicate control destinations {self.control}"
                )
            if pid in dests or not (
                dests <= pids if pids is not None
                else all(1 <= dest <= n for dest in dests)
            ):
                for dest in self.control:
                    if not (1 <= dest <= n) or dest == pid:
                        raise ModelViolationError(
                            f"p{pid}: invalid control destination {dest} (n={n})"
                        )


#: Shared empty plan for rounds in which a process stays silent.
NO_SEND = SendPlan()


@dataclass(slots=True)
class RoundInbox:
    """Everything delivered to one process in one round.

    Attributes
    ----------
    data:
        sender id → payload, for data messages received this round.
    control:
        ids of processes whose control (synchronization) message arrived.

    Treat instances as immutable.  The class is not ``frozen`` because a
    frozen dataclass pays an ``object.__setattr__`` per field on every
    construction and engines build one inbox per hearing receiver per
    round on the benchmark hot path (same trade as
    :class:`~repro.sync.result.ProcessOutcome`).
    """

    data: Mapping[int, Any] = field(default_factory=dict)
    control: frozenset[int] = frozenset()

    @property
    def empty(self) -> bool:
        """True when nothing at all was received this round."""
        return not self.data and not self.control


#: Shared inbox for receivers that heard nothing this round: frozensets are
#: immutable and the data view is a read-only mapping proxy, so every such
#: receiver can hold the same object without aliasing risk.  Batched tables
#: identity-test against it to skip no-op receivers without touching the
#: inbox's attributes.
EMPTY_INBOX = RoundInbox(data=MappingProxyType({}), control=frozenset())


class SyncProcess(abc.ABC):
    """Base class for processes of the (classic or extended) round model.

    Subclasses implement :meth:`send_phase` and :meth:`compute_phase`.
    State must live in instance attributes so runs can be snapshotted by
    the lower-bound explorer via ``copy.deepcopy``.

    The base class declares ``__slots__`` (engines construct ``n``
    processes per run; slotted attribute writes are measurably cheaper on
    n=128 grids).  Subclasses may declare their own slots for the same
    benefit or omit ``__slots__`` entirely — they then simply get a
    ``__dict__`` as usual.
    """

    __slots__ = ("pid", "n", "_decision", "_decided", "_decision_round")

    def __init__(self, pid: int, n: int) -> None:
        if not 1 <= pid <= n:
            raise ConfigurationError(f"pid must be in 1..{n}, got {pid}")
        if n < 2:
            raise ConfigurationError(f"need at least 2 processes, got n={n}")
        self.pid = pid
        self.n = n
        self._decision: Any = None
        self._decided = False
        self._decision_round = 0

    # -- hooks ------------------------------------------------------------

    @abc.abstractmethod
    def send_phase(self, round_no: int) -> SendPlan:
        """Produce this round's :class:`SendPlan` (may not inspect inbox)."""

    @abc.abstractmethod
    def compute_phase(self, round_no: int, inbox: RoundInbox) -> None:
        """Consume this round's :class:`RoundInbox`; may call :meth:`decide`."""

    # -- decision ---------------------------------------------------------

    def decide(self, value: Any) -> None:
        """Decide ``value`` (the paper's ``return``); idempotence not allowed.

        The engine observes the decision after the hook returns, records the
        round, and removes the process from the run.
        """
        if self._decided:
            raise ModelViolationError(f"p{self.pid} decided twice")
        self._decided = True
        self._decision = value

    @property
    def decided(self) -> bool:
        """Whether :meth:`decide` has been called."""
        return self._decided

    @property
    def decision(self) -> Any:
        """The decided value (only meaningful when :attr:`decided`)."""
        return self._decision

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"decided={self._decision!r}" if self._decided else "running"
        return f"{type(self).__name__}(pid={self.pid}, n={self.n}, {state})"


# ---------------------------------------------------------------------------
# Batched stepping: whole-table hooks over columnar process state.
# ---------------------------------------------------------------------------


class BatchedAlgorithm(abc.ABC):
    """Columnar drop-in for a whole table of same-typed processes.

    Engines normally drive one :class:`SyncProcess` at a time — two method
    calls per (process, round).  An algorithm can additionally ship a
    *batched table*: one object holding every process's state in parallel
    lists, stepped with two calls per **round**.  The engine detects the
    capability (see :func:`batched_table_for`) and runs the whole round
    through it; everything downstream of the hooks — crash resolution,
    delivery, accounting, tracing — is shared with per-process stepping,
    so the two modes are observably identical
    (``tests/sync/test_batched_parity.py`` pins this).

    Contract (parity with per-process stepping depends on all three):

    * :meth:`send_phase_all` returns a plan for **every** pid in
      ``active``, in ``active`` order (``dict.fromkeys(active, NO_SEND)``
      gives both for the common mostly-silent round), and must behave
      exactly like calling ``send_phase`` on each process in that order —
      including raising the same model violations;
    * :meth:`compute_phase_all` consumes the engine-built inboxes (one
      per surviving receiver, in ascending pid order) and returns the
      round's new decisions ``{pid: value}`` in the order they were made;
    * the table is the *authoritative* copy of algorithm state while the
      engine steps in batched mode; the engine mirrors decisions back to
      the process objects, but other per-process attributes (estimates,
      value sets) are not kept in sync mid-run.
    """

    @classmethod
    @abc.abstractmethod
    def from_processes(cls, processes: Sequence[SyncProcess]) -> "BatchedAlgorithm":
        """Build the columnar table from freshly constructed processes."""

    @abc.abstractmethod
    def send_phase_all(self, round_no: int, active: Sequence[int]) -> dict[int, SendPlan]:
        """Plans for every active pid (silent processes map to NO_SEND)."""

    @abc.abstractmethod
    def compute_phase_all(
        self, round_no: int, inboxes: Mapping[int, RoundInbox]
    ) -> dict[int, Any]:
        """Consume the round's inboxes; return new decisions ``{pid: value}``."""

    #: Refill capability advertisement: tables that implement :meth:`refill`
    #: set this True (the registry surfaces it through
    #: :func:`batched_table_refillable`), letting a leased engine skip the
    #: n-object process factory entirely on same-configuration reruns.
    supports_refill: bool = False

    def refill(self, proposals: Sequence[Any]) -> bool:
        """Rewrite the columns in place for a fresh run with ``proposals``.

        Returns True when the table took the refill (it must then be
        byte-for-byte equivalent to ``from_processes`` over freshly
        constructed processes of the same configuration — the refill
        parity grid in ``tests/scenarios/test_columnar_parity.py`` pins
        this), False when refilling is unsupported.  Configuration-shaped
        state (``n``, per-process parameters like TruncatedCRW's ``k``,
        destination tuples) is fixed across a lease and must not change.
        """
        return False


#: Exact process type -> table factory.  Keyed by exact type (not
#: ``isinstance``): a subclass overriding a hook must not silently inherit
#: its parent's batched semantics — it opts in with its own table.
_BATCHED_TABLES: dict[type, Callable[[Sequence[SyncProcess]], BatchedAlgorithm]] = {}


def register_batched_table(
    process_cls: type,
) -> Callable[[type[BatchedAlgorithm]], type[BatchedAlgorithm]]:
    """Class decorator: register a table implementation for ``process_cls``.

    ::

        @register_batched_table(CRWConsensus)
        class CRWTable(BatchedAlgorithm): ...
    """

    def deco(table_cls: type[BatchedAlgorithm]) -> type[BatchedAlgorithm]:
        if process_cls in _BATCHED_TABLES:
            raise ConfigurationError(
                f"{process_cls.__name__} already has a batched table"
            )
        _BATCHED_TABLES[process_cls] = table_cls.from_processes
        return table_cls

    return deco


def batched_table_for(processes: Sequence[SyncProcess]) -> BatchedAlgorithm | None:
    """The columnar table for ``processes``, or None when unavailable.

    Requires a homogeneous table: every process of the exact registered
    type.  Mixed tables (and wrappers like the cross-model simulations)
    fall back to per-process stepping.
    """
    if not processes:
        return None
    cls = type(processes[0])
    factory = _BATCHED_TABLES.get(cls)
    if factory is None:
        return None
    if any(type(p) is not cls for p in processes):
        return None
    return factory(processes)


# ---------------------------------------------------------------------------
# Vectorized stepping: array-column hooks, no plans, no inboxes.
# ---------------------------------------------------------------------------

#: One speaker's outgoing traffic for one round, as a plain tuple
#: ``(sender, data_dests, payload, control_dests)``:
#:
#: * ``data_dests`` — the planned data destinations.  A ``range`` (the
#:   coordinator patterns), the table's precomputed all-others tuple, or —
#:   after crash truncation — the resolved ``frozenset`` subset.  **Every
#:   destination carries the same ``payload``** (uniform-payload contract;
#:   all first-party sync algorithms broadcast one value per round), and a
#:   tuple of length ``n - 1`` is by contract the all-others broadcast.
#: * ``payload`` — the exact value the per-process ``send_phase`` would
#:   have put in the plan (Python-native types: the bit-accounting memo
#:   and JSON serialization are type-sensitive).
#: * ``control_dests`` — ordered control destinations, ``range`` or tuple
#:   (sliceable: a crash delivers ``control_dests[:prefix]``).
#:
#: Tuples, not a dataclass: the engine builds/consumes one per speaker per
#: round on the benchmark-critical path.
VectorSend = tuple  # (sender, data_dests, payload, control_dests)


class VectorAlgorithm(abc.ABC):
    """Array-columnar drop-in for a whole table of same-typed processes.

    The third stepping mode, above :class:`BatchedAlgorithm`: where the
    list-batched table still produces one :class:`SendPlan` and consumes
    one :class:`RoundInbox` per process per round, a vector table
    describes a round's traffic as a sparse list of :data:`VectorSend`
    tuples (speakers only) and computes the round over typed array
    columns (:mod:`repro.util.columns`) — whole-column compare/reduce
    instead of per-pid loops.  The engine never materializes plans or
    inboxes in this mode; it resolves crashes and charges accounting
    straight off the send tuples.

    Contract (byte-parity with the other modes depends on all of it):

    * :meth:`from_processes` may return None when the processes' state is
      not vectorizable (non-int64 values, heterogeneous configuration);
      the engine then falls back to list-batched/per-process stepping.
    * :meth:`send_phase_vector` returns sends for **speakers only**, in
      ascending pid order, mirroring what the per-process ``send_phase``
      loop would have produced (including raising the same model
      violations).  Silent processes simply do not appear.
    * :meth:`compute_phase_vector` receives the post-truncation sends and
      the surviving receivers and returns the round's new decisions
      ``{pid: value}`` **in ascending pid order** with Python-native
      values — the engine's ledgers (and ultimately the record JSON)
      inherit dict insertion order.
    * ``crash_free=True`` guarantees every send was delivered in full to
      every receiver (no crash resolved this round), unlocking the
      uniform whole-column math; ``crash_free=False`` rounds take the
      table's per-receiver fallback over the truncated sends.

    Vector tables are first-party mirrors of their process classes (the
    vector parity grid runs the validated object path against them), so
    the engine does not re-validate their sends — same trust model as
    the list-batched tables.
    """

    @classmethod
    @abc.abstractmethod
    def from_processes(
        cls, processes: Sequence[SyncProcess]
    ) -> "VectorAlgorithm | None":
        """Build the array-columnar table, or None when not vectorizable."""

    @abc.abstractmethod
    def send_phase_vector(
        self, round_no: int, active: Sequence[int]
    ) -> list[VectorSend]:
        """This round's sends, speakers only, ascending pid order."""

    @abc.abstractmethod
    def compute_phase_vector(
        self,
        round_no: int,
        receivers: set[int],
        receiver_order: list[int],
        sends: list[VectorSend],
        crash_free: bool,
    ) -> dict[int, Any]:
        """Consume the round's (post-truncation) sends; return decisions."""

    #: Same refill capability advertisement as :class:`BatchedAlgorithm`.
    supports_refill: bool = False

    def refill(self, proposals: Sequence[Any]) -> bool:
        """Rewrite the array columns in place for a fresh run.

        May return False when the new proposals are not vectorizable
        (e.g. they stopped being int64s, or a FloodSet universe outgrew
        its bitmask) — the engine then declines the refill and the caller
        falls back to the factory + reset path, which re-detects the
        stepping mode.
        """
        return False


#: Exact process type -> vector table factory (same exact-type discipline
#: as the list-batched registry).
_VECTOR_TABLES: dict[type, Callable[[Sequence[SyncProcess]], "VectorAlgorithm | None"]] = {}


def register_vector_table(
    process_cls: type,
) -> Callable[[type["VectorAlgorithm"]], type["VectorAlgorithm"]]:
    """Class decorator: register a vector table for ``process_cls``."""

    def deco(table_cls: type[VectorAlgorithm]) -> type[VectorAlgorithm]:
        if process_cls in _VECTOR_TABLES:
            raise ConfigurationError(
                f"{process_cls.__name__} already has a vector table"
            )
        _VECTOR_TABLES[process_cls] = table_cls.from_processes
        return table_cls

    return deco


def vector_table_for(processes: Sequence[SyncProcess]) -> "VectorAlgorithm | None":
    """The vector table for ``processes``, or None when unavailable.

    None covers three distinct cases that all mean "step another way":
    no registration for the (exact) process type, a mixed table, or a
    registered factory declining the processes' current state
    (:meth:`VectorAlgorithm.from_processes` returning None).
    """
    if not processes:
        return None
    cls = type(processes[0])
    factory = _VECTOR_TABLES.get(cls)
    if factory is None:
        return None
    if any(type(p) is not cls for p in processes):
        return None
    return factory(processes)


def batched_table_refillable(process_cls: type) -> bool:
    """Whether ``process_cls``'s registered table advertises ``refill``.

    Registry-level introspection mirroring the check the engines make on
    the live table (``table.supports_refill``) when a lease rerun asks to
    skip the process factory; use it to answer the question without
    building a table first.  Unregistered classes — and registrations
    whose factory is a plain callable rather than a table classmethod —
    report False.
    """
    factory = _BATCHED_TABLES.get(process_cls)
    if factory is None:
        return False
    table_cls = getattr(factory, "__self__", None)
    return bool(getattr(table_cls, "supports_refill", False))

"""Run results for synchronous executions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.net.accounting import MessageStats
from repro.util.trace import Trace

__all__ = ["ProcessOutcome", "RunResult"]


@dataclass(slots=True, unsafe_hash=True)
class ProcessOutcome:
    """Final state of one process after a run.

    ``decided_round`` / ``crashed_round`` are 0 when the corresponding event
    did not happen.  A process may have *both* a decision and a later crash
    only in the degenerate sense of deciding then halting — halting after a
    decision is normal termination, not recorded as a crash.

    Treat instances as immutable.  The class is not ``frozen`` because a
    frozen dataclass pays an ``object.__setattr__`` per field on every
    construction, and ``result()`` builds ``n`` of these per run on the
    benchmark hot path; ``unsafe_hash`` keeps the by-value hashing frozen
    used to provide.
    """

    pid: int
    proposal: Any
    decided: bool
    decision: Any
    decided_round: int
    crashed: bool
    crashed_round: int

    @property
    def correct(self) -> bool:
        """A process is *correct in the run* iff it never crashed."""
        return not self.crashed


@dataclass(slots=True)
class RunResult:
    """Everything observable about one synchronous run."""

    n: int
    t: int
    model: str  # "classic" | "extended"
    outcomes: dict[int, ProcessOutcome]
    rounds_executed: int
    completed: bool  # False iff max_rounds was hit with live undecided processes
    stats: MessageStats
    trace: Trace

    # -- derived views ------------------------------------------------------

    @property
    def f(self) -> int:
        """Actual number of crashes in the run (the paper's ``f``)."""
        return sum(1 for o in self.outcomes.values() if o.crashed)

    @property
    def proposals(self) -> dict[int, Any]:
        """pid → proposed value."""
        return {pid: o.proposal for pid, o in self.outcomes.items()}

    @property
    def decisions(self) -> dict[int, Any]:
        """pid → decided value, for the processes that decided."""
        return {pid: o.decision for pid, o in self.outcomes.items() if o.decided}

    @property
    def decision_rounds(self) -> dict[int, int]:
        """pid → round of decision, for the processes that decided."""
        return {pid: o.decided_round for pid, o in self.outcomes.items() if o.decided}

    @property
    def correct_pids(self) -> list[int]:
        """Ids of processes that never crashed."""
        return sorted(pid for pid, o in self.outcomes.items() if o.correct)

    @property
    def crashed_pids(self) -> list[int]:
        """Ids of processes that crashed."""
        return sorted(pid for pid, o in self.outcomes.items() if o.crashed)

    @property
    def last_decision_round(self) -> int:
        """Largest decision round over all deciders (0 if nobody decided)."""
        rounds = self.decision_rounds
        return max(rounds.values()) if rounds else 0

    def summary(self) -> str:
        """One-line human summary (used in spec-violation messages)."""
        return (
            f"{self.model} run n={self.n} t={self.t} f={self.f} "
            f"rounds={self.rounds_executed} completed={self.completed} "
            f"decisions={self.decisions} crashed={self.crashed_pids}"
        )

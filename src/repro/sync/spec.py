"""Consensus specification checkers.

The uniform consensus problem (paper, Section 3.1):

* **Termination** — every correct process eventually decides.
* **Validity** — a decided value was proposed by some process.
* **Uniform agreement** — no two processes (correct **or faulty**) decide
  different values.

Plain (non-uniform) agreement restricts the agreement clause to correct
processes; the library checks both so tests can demonstrate why uniformity
is the interesting property (a faulty process deciding differently violates
uniform but not plain agreement).

Checkers either return a list of human-readable violation strings
(:func:`check_consensus`) or raise :class:`~repro.errors.SpecViolationError`
with the run summary (:func:`assert_consensus`), which is what tests use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import SpecViolationError
from repro.sync.result import RunResult

__all__ = ["SpecReport", "check_consensus", "assert_consensus"]


@dataclass(frozen=True, slots=True)
class SpecReport:
    """Outcome of checking one run against the consensus spec."""

    violations: tuple[str, ...]
    early_stopping_bound: int  # the f+1 bound evaluated for this run
    last_decision_round: int

    @property
    def ok(self) -> bool:
        """True when no clause was violated."""
        return not self.violations


def check_consensus(
    result: RunResult,
    *,
    uniform: bool = True,
    round_bound: int | None = None,
    require_early_stopping: bool = False,
) -> SpecReport:
    """Check ``result`` against the (uniform) consensus specification.

    Parameters
    ----------
    uniform:
        Check uniform agreement (decisions of faulty processes count).
    round_bound:
        If given, additionally require ``last decision round <= round_bound``.
    require_early_stopping:
        If True, additionally require the paper's Theorem 1 bound: no
        process decides after round ``f + 1`` where ``f`` is the *actual*
        number of crashes in the run.
    """
    violations: list[str] = []
    # One pass over the outcomes collects everything the clauses need; the
    # RunResult derived-view properties would each re-iterate all n of them.
    proposals = set()
    deciders: dict[int, Any] = {}
    undecided_correct: list[int] = []
    crashed_count = 0
    last = 0
    for pid, o in result.outcomes.items():
        # Proposals may be unhashable in principle; the library's values are
        # ints/strs/SizedValue, all hashable.
        proposals.add(o.proposal)
        if o.crashed:
            crashed_count += 1
        elif not o.decided:
            undecided_correct.append(pid)
        if o.decided:
            deciders[pid] = o.decision
            if o.decided_round > last:
                last = o.decided_round

    # Termination: every correct process decided, and the run completed.
    for pid in sorted(undecided_correct):
        violations.append(f"termination: correct p{pid} never decided")
    if not result.completed:
        violations.append(
            f"termination: run stopped at round budget with live undecided processes"
        )

    # Validity: decided values were proposed.
    for pid, value in deciders.items():
        if value not in proposals:
            violations.append(
                f"validity: p{pid} decided {value!r} which nobody proposed"
            )

    # Agreement.
    scope = deciders if uniform else {
        pid: v for pid, v in deciders.items() if result.outcomes[pid].correct
    }
    distinct = {}
    for pid, value in scope.items():
        distinct.setdefault(value, []).append(pid)
    if len(distinct) > 1:
        kind = "uniform agreement" if uniform else "agreement"
        detail = "; ".join(
            f"{value!r} by {sorted(pids)}" for value, pids in sorted(
                distinct.items(), key=lambda kv: str(kv[0])
            )
        )
        violations.append(f"{kind}: conflicting decisions ({detail})")

    # Round bounds.
    es_bound = crashed_count + 1
    if round_bound is not None and last > round_bound:
        violations.append(
            f"round bound: last decision at round {last} > bound {round_bound}"
        )
    if require_early_stopping and last > es_bound:
        violations.append(
            f"early stopping: last decision at round {last} > f+1 = {es_bound}"
        )

    return SpecReport(
        violations=tuple(violations),
        early_stopping_bound=es_bound,
        last_decision_round=last,
    )


def assert_consensus(
    result: RunResult,
    *,
    uniform: bool = True,
    round_bound: int | None = None,
    require_early_stopping: bool = False,
) -> SpecReport:
    """Like :func:`check_consensus` but raises on any violation."""
    report = check_consensus(
        result,
        uniform=uniform,
        round_bound=round_bound,
        require_early_stopping=require_early_stopping,
    )
    if not report.ok:
        raise SpecViolationError(
            "; ".join(report.violations) + f" | {result.summary()}"
        )
    return report

"""Adversary strategies — generators of crash schedules.

An :class:`Adversary` turns ``(n, t, rng)`` into a
:class:`~repro.sync.crash.CrashSchedule`.  Strategies range from benign
(no crashes, random crashes) to the structured worst cases used by the
round-complexity and lower-bound experiments:

* :class:`CoordinatorKiller` — crashes the round-``r`` coordinator ``p_r``
  during its data step for ``r = 1..f``, the schedule that forces the
  paper's algorithm to its full ``f + 1`` rounds (proof of Lemma 3 /
  the Theorem 2 worst case).
* :class:`CommitSplitter` — the coordinator finishes its data step and
  crashes mid-control-step with a chosen prefix, producing runs where only
  a top segment of ids decides early; this is the scenario uniform
  agreement has to survive and the one the E4 experiment uses to break
  too-fast algorithm variants.
* :class:`StaggeredKiller` — crashes spread over arbitrary rounds,
  exercising runs where ``f`` processes die but not as coordinators.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sync.crash import CrashEvent, CrashPoint, CrashSchedule, Prefix, Subset
from repro.util.rng import RandomSource

__all__ = [
    "Adversary",
    "NoCrash",
    "RandomCrashes",
    "CoordinatorKiller",
    "CommitSplitter",
    "StaggeredKiller",
]


class Adversary(abc.ABC):
    """A crash-schedule generator."""

    @abc.abstractmethod
    def schedule(self, n: int, t: int, rng: RandomSource) -> CrashSchedule:
        """Produce a schedule valid for an ``(n, t)`` system."""

    @staticmethod
    def _check_f(f: int, n: int, t: int) -> None:
        if f < 0 or f > t:
            raise ConfigurationError(f"f={f} outside 0..t={t}")
        if f >= n:
            raise ConfigurationError(f"f={f} must be < n={n}")


class NoCrash(Adversary):
    """The failure-free adversary (best case of Theorems 1 and 2)."""

    def schedule(self, n: int, t: int, rng: RandomSource) -> CrashSchedule:
        return CrashSchedule.none()


@dataclass(frozen=True)
class RandomCrashes(Adversary):
    """``f`` uniformly chosen victims, rounds in ``1..max_round``, random
    crash points and random delivery subsets/prefixes.

    Set ``classic=True`` to restrict crash points to the classic model
    (no DURING_CONTROL — the control step does not exist there).
    """

    f: int
    max_round: int | None = None  # default: f + 1 (the interesting window)
    classic: bool = False

    def schedule(self, n: int, t: int, rng: RandomSource) -> CrashSchedule:
        self._check_f(self.f, n, t)
        horizon = self.max_round if self.max_round is not None else self.f + 1
        victims = rng.sample(range(1, n + 1), self.f)
        points = [
            CrashPoint.BEFORE_SEND,
            CrashPoint.DURING_DATA,
            CrashPoint.AFTER_SEND,
        ]
        if not self.classic:
            points.append(CrashPoint.DURING_CONTROL)
        events = [
            CrashEvent(
                pid=pid,
                round_no=rng.randint(1, max(1, horizon)),
                point=rng.choice(points),
                data_policy=Subset.RANDOM,
                control_policy=Prefix.RANDOM,
            )
            for pid in victims
        ]
        return CrashSchedule(events)


@dataclass(frozen=True)
class CoordinatorKiller(Adversary):
    """Crash coordinator ``p_r`` in round ``r`` during its data step,
    for ``r = 1..f``.

    ``deliver_to_none=True`` (default) drops every data message of the dying
    coordinator, which keeps all estimates untouched and is the canonical
    run forcing ``f + 1`` rounds on the paper's algorithm.  With ``False``
    the adversary instead delivers to a random subset, which still forces
    ``f + 1`` rounds (no commit is ever sent) but perturbs estimates.
    """

    f: int
    deliver_to_none: bool = True

    def schedule(self, n: int, t: int, rng: RandomSource) -> CrashSchedule:
        self._check_f(self.f, n, t)
        policy = Subset.NONE if self.deliver_to_none else Subset.RANDOM
        events = [
            CrashEvent(
                pid=r,
                round_no=r,
                point=CrashPoint.DURING_DATA,
                data_policy=policy,
            )
            for r in range(1, self.f + 1)
        ]
        return CrashSchedule(events)


@dataclass(frozen=True)
class CommitSplitter(Adversary):
    """First ``f - 1`` coordinators die in their data step; coordinator
    ``p_f`` completes its data step and crashes after delivering exactly
    ``prefix_len`` control messages (decreasing-id order ⇒ the top
    ``prefix_len`` ids decide early, everyone else needs another round).

    ``prefix_len=None`` lets the engine pick a random prefix.
    """

    f: int
    prefix_len: int | None = 1

    def schedule(self, n: int, t: int, rng: RandomSource) -> CrashSchedule:
        self._check_f(self.f, n, t)
        if self.f == 0:
            return CrashSchedule.none()
        events = [
            CrashEvent(pid=r, round_no=r, point=CrashPoint.DURING_DATA, data_policy=Subset.NONE)
            for r in range(1, self.f)
        ]
        events.append(
            CrashEvent(
                pid=self.f,
                round_no=self.f,
                point=CrashPoint.DURING_CONTROL,
                control_prefix=self.prefix_len,
                control_policy=Prefix.RANDOM,
            )
        )
        return CrashSchedule(events)


@dataclass(frozen=True)
class MaxTrafficCascade(Adversary):
    """Theorem 2's worst-case traffic: coordinator ``p_r`` completes its
    data step and crashes after sending commits to everybody *except* the
    next coordinator (prefix ``n - r - 1`` of the decreasing sequence), for
    ``r = 1..f``.

    Each round therefore carries almost the full ``2(n-r)`` messages of the
    paper's worst-case sum while the run still lasts ``f + 1`` rounds
    (the next coordinator never sees a commit, so it keeps going)."""

    f: int

    def schedule(self, n: int, t: int, rng: RandomSource) -> CrashSchedule:
        self._check_f(self.f, n, t)
        events = []
        for r in range(1, self.f + 1):
            prefix = max(0, n - r - 1)  # all commits but the one to p_{r+1}
            events.append(
                CrashEvent(
                    pid=r,
                    round_no=r,
                    point=CrashPoint.DURING_CONTROL,
                    control_prefix=prefix,
                )
            )
        return CrashSchedule(events)


@dataclass(frozen=True)
class StaggeredKiller(Adversary):
    """``f`` crashes at explicitly staggered (pid, round) positions:
    victim ids are the *last* ``f`` processes (never the early
    coordinators), one crash per round starting at ``first_round``.

    Against the paper's algorithm this is a *benign* failure pattern: the
    first coordinator survives, so everyone decides in round 1 regardless
    of ``f`` — the experiment uses it to show the algorithm's early
    stopping is about *which* processes crash, not how many.
    """

    f: int
    first_round: int = 1

    def schedule(self, n: int, t: int, rng: RandomSource) -> CrashSchedule:
        self._check_f(self.f, n, t)
        if self.first_round < 1:
            raise ConfigurationError("first_round must be >= 1")
        events = [
            CrashEvent(
                pid=n - k,
                round_no=self.first_round + k,
                point=CrashPoint.AFTER_SEND,
            )
            for k in range(self.f)
        ]
        return CrashSchedule(events)

"""Replicated state machine on top of multi-shot Figure-1 consensus."""

from repro.rsm.log import ReplicatedLog, ReplicaState, SlotResult
from repro.rsm.machine import MACHINES, Command, Counter, KVStore, StateMachine

__all__ = [
    "ReplicatedLog",
    "ReplicaState",
    "SlotResult",
    "Command",
    "Counter",
    "KVStore",
    "StateMachine",
    "MACHINES",
]

"""A replicated log built from repeated Figure-1 consensus instances.

Each log *slot* is one uniform-consensus instance on the extended
synchronous engine: every live replica proposes its pending command, the
decided command is appended to every replica that decided, and the state
machines apply the log in order.  Crash-stop persistence holds across
slots: a replica that crashed in slot ``k`` enters every later slot
pre-crashed (scheduled to die before sending).

Because each instance is the paper's algorithm, the log inherits its
properties directly:

* **uniform agreement per slot** ⇒ all replicas hold a common log prefix
  and correct replicas end with identical state digests;
* **early stopping** ⇒ slot latency is ``(f_slot + 1)`` extended rounds
  where ``f_slot`` counts only the crashes *during that slot* — the
  failure-free steady state commits every slot in a single round, which is
  the LAN-replication story the paper's cost analysis targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.crw import CRWConsensus
from repro.errors import ConfigurationError
from repro.rsm.machine import Command, StateMachine
from repro.sync.crash import CrashEvent, CrashPoint, CrashSchedule
from repro.sync.extended import ExtendedSynchronousEngine
from repro.sync.spec import check_consensus
from repro.util.rng import RandomSource

__all__ = ["SlotResult", "ReplicaState", "ReplicatedLog"]


@dataclass(frozen=True, slots=True)
class SlotResult:
    """Outcome of one log slot."""

    slot: int
    decided: Command | None
    rounds: int
    appended_to: tuple[int, ...]
    new_crashes: tuple[int, ...]
    violations: tuple[str, ...]


@dataclass(slots=True)
class ReplicaState:
    """One replica: its log, machine, and liveness."""

    pid: int
    machine: StateMachine
    log: list[Command] = field(default_factory=list)
    alive: bool = True


class ReplicatedLog:
    """Multi-slot replication driver."""

    def __init__(
        self,
        n: int,
        machine_factory,
        *,
        t: int | None = None,
        rng: RandomSource | None = None,
    ) -> None:
        if n < 2:
            raise ConfigurationError("need n >= 2 replicas")
        self.n = n
        self.t = n - 1 if t is None else t
        self.rng = rng or RandomSource(0)
        self.replicas: dict[int, ReplicaState] = {
            pid: ReplicaState(pid=pid, machine=machine_factory()) for pid in range(1, n + 1)
        }
        self.slots: list[SlotResult] = []
        self._crashed_forever: set[int] = set()
        # One leased engine for the whole log: slot k+1 refills slot k's
        # engine (columnar est/decision rewrites, zero process
        # construction) instead of paying the n-object factory plus
        # engine wiring per slot.  reset() is the fallback for the
        # hypothetical non-refillable table.
        self._engine: ExtendedSynchronousEngine | None = None

    # -- public API ---------------------------------------------------------------

    @property
    def live_pids(self) -> list[int]:
        """Replicas that have not crashed in any past slot."""
        return sorted(pid for pid in self.replicas if pid not in self._crashed_forever)

    def commit(
        self,
        commands: Mapping[int, Command],
        crash_events: list[CrashEvent] | None = None,
    ) -> SlotResult:
        """Run one slot: agree on one of ``commands`` and apply it.

        ``commands`` maps proposing pid → command; replicas without a
        pending command propose a ``noop``.  ``crash_events`` inject fresh
        failures into this slot (on top of the persistent ones).
        """
        slot_no = len(self.slots) + 1
        remaining_budget = self.t - len(self._crashed_forever)
        fresh = list(crash_events or [])
        if len(fresh) > remaining_budget:
            raise ConfigurationError(
                f"slot {slot_no}: {len(fresh)} new crashes exceed remaining "
                f"budget {remaining_budget} (t={self.t})"
            )
        proposals = [
            commands.get(pid, Command(origin=pid, op="noop"))
            for pid in range(1, self.n + 1)
        ]

        events = list(fresh)
        for pid in sorted(self._crashed_forever):
            events.append(CrashEvent(pid, 1, CrashPoint.BEFORE_SEND))
        schedule = CrashSchedule(events)

        slot_rng = self.rng.spawn(f"slot{slot_no}")
        engine = self._engine
        if engine is None:
            procs = [
                CRWConsensus(pid, self.n, proposal=proposals[pid - 1])
                for pid in range(1, self.n + 1)
            ]
            engine = ExtendedSynchronousEngine(
                procs, schedule, t=self.t, rng=slot_rng, trace=False
            )
            self._engine = engine
        elif not engine.refill(proposals, schedule, rng=slot_rng):
            procs = [
                CRWConsensus(pid, self.n, proposal=proposals[pid - 1])
                for pid in range(1, self.n + 1)
            ]
            engine.reset(procs, schedule, rng=slot_rng)
        result = engine.run()
        spec = check_consensus(result, require_early_stopping=True)

        decided_values = set(result.decisions.values())
        decided = next(iter(decided_values)) if len(decided_values) == 1 else None
        appended = []
        for pid, value in sorted(result.decisions.items()):
            replica = self.replicas[pid]
            replica.log.append(value)
            replica.machine.apply(value)
            appended.append(pid)

        new_crashes = tuple(
            pid for pid in result.crashed_pids if pid not in self._crashed_forever
        )
        for pid in new_crashes:
            self._crashed_forever.add(pid)
            self.replicas[pid].alive = False

        slot = SlotResult(
            slot=slot_no,
            decided=decided,
            rounds=result.rounds_executed,
            appended_to=tuple(appended),
            new_crashes=new_crashes,
            violations=spec.violations,
        )
        self.slots.append(slot)
        return slot

    # -- invariants -----------------------------------------------------------------

    def check_invariants(self) -> list[str]:
        """Replication invariants over the whole history (empty = OK)."""
        problems: list[str] = []
        live = [self.replicas[pid] for pid in self.live_pids]
        if live:
            reference = live[0].log
            for replica in live[1:]:
                if replica.log != reference:
                    problems.append(
                        f"log divergence: p{replica.pid} vs p{live[0].pid}"
                    )
            digests = {r.machine.digest() for r in live}
            if len(digests) > 1:
                problems.append(f"state divergence across live replicas: {digests}")
        # Prefix property for crashed replicas: their log is a prefix of the
        # live log (they stopped appending when they died — uniform
        # agreement guarantees what they did append matches).
        if live:
            reference = live[0].log
            for pid in sorted(self._crashed_forever):
                dead_log = self.replicas[pid].log
                if dead_log != reference[: len(dead_log)]:
                    problems.append(f"crashed p{pid} log is not a prefix")
        for slot in self.slots:
            if slot.violations:
                problems.append(f"slot {slot.slot} spec violations: {slot.violations}")
        return problems

"""State machines replicated by the consensus log.

The paper motivates consensus as the primitive that turns "a set of
independent applications" into one fault-tolerant application; the classic
construction is state-machine replication: agree on a totally ordered log
of commands, apply them deterministically everywhere.  This module defines
the command/state-machine vocabulary; :mod:`repro.rsm.log` builds the log
out of repeated Figure-1 consensus instances.
"""

from __future__ import annotations

import abc
import hashlib
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError

__all__ = ["Command", "StateMachine", "KVStore", "Counter", "MACHINES"]


@dataclass(frozen=True, slots=True)
class Command:
    """One client command entering the replicated log.

    ``origin`` is the replica that proposed it; ``op`` is the operation
    string interpreted by the state machine (machine-specific syntax).
    ``tag`` is an optional ``(session_id, request_id)`` identity set by the
    service layer — commands agree (and dedup) on the full value, so a
    retried request that already committed is recognizable in the log.
    """

    origin: int
    op: str
    tag: tuple[int, int] | None = None

    def bit_size(self) -> int:
        """Wire width when a command rides in a DATA message."""
        base = 16 + 8 * len(self.op.encode("utf-8"))
        return base + (64 if self.tag is not None else 0)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        ident = f" [{self.tag[0]}.{self.tag[1]}]" if self.tag is not None else ""
        return f"p{self.origin}:{self.op}{ident}"


class StateMachine(abc.ABC):
    """A deterministic state machine (one instance per replica)."""

    @abc.abstractmethod
    def apply(self, command: Command) -> Any:
        """Apply one command; returns the op's result (machine-specific)."""

    @abc.abstractmethod
    def snapshot(self) -> Any:
        """Serializable view of the current state."""

    def digest(self) -> str:
        """Stable fingerprint of the state; equal digests ⇒ equal state."""
        return hashlib.sha256(repr(self.snapshot()).encode("utf-8")).hexdigest()[:16]


class KVStore(StateMachine):
    """A tiny key-value store: ``set k v`` / ``del k`` / ``noop``."""

    def __init__(self) -> None:
        self.data: dict[str, str] = {}

    def apply(self, command: Command) -> Any:
        parts = command.op.split()
        if not parts:
            raise ConfigurationError("empty command")
        verb = parts[0]
        if verb == "set":
            if len(parts) != 3:
                raise ConfigurationError(f"set needs 2 args: {command.op!r}")
            self.data[parts[1]] = parts[2]
            return parts[2]
        if verb == "del":
            if len(parts) != 2:
                raise ConfigurationError(f"del needs 1 arg: {command.op!r}")
            return self.data.pop(parts[1], None)
        if verb == "noop":
            return None
        raise ConfigurationError(f"unknown op {verb!r}")

    def snapshot(self) -> Any:
        return tuple(sorted(self.data.items()))


class Counter(StateMachine):
    """An integer register: ``add k`` / ``sub k`` / ``noop``."""

    def __init__(self) -> None:
        self.value = 0

    def apply(self, command: Command) -> Any:
        parts = command.op.split()
        if parts[0] == "add":
            self.value += int(parts[1])
        elif parts[0] == "sub":
            self.value -= int(parts[1])
        elif parts[0] == "noop":
            pass
        else:
            raise ConfigurationError(f"unknown op {parts[0]!r}")
        return self.value

    def snapshot(self) -> Any:
        return self.value


#: Registry of replicable state machines, by CLI/service name.
MACHINES: dict[str, type[StateMachine]] = {
    "kv": KVStore,
    "counter": Counter,
}

"""E6 — related work [1]: fast-failure-detector consensus timing."""

from __future__ import annotations

from repro.ffd.consensus import run_ffd_consensus
from repro.ffd.timed import TimedCrash, TimedSpec
from repro.harness.experiments import e6_ffd
from repro.util.rng import RandomSource


def test_e6_report(benchmark, report):
    result = benchmark.pedantic(e6_ffd, rounds=1, iterations=1)
    report(result)
    assert result.findings["ffd_runs_uniform"] is True
    assert result.findings["measured_within_model_bound"] is True


def test_e6_kernel_cascade(benchmark):
    spec = TimedSpec(n=6, D=100.0, d=1.0)

    def kernel():
        return run_ffd_consensus(
            spec,
            [100 + pid for pid in range(1, 7)],
            [TimedCrash(pid, 0.0) for pid in range(1, 4)],
            rng=RandomSource(3),
        )

    result = benchmark(kernel)
    assert result.check_consensus() == []
    # D + f*d (+ the implementation's one-slot detector settle).
    assert result.max_decision_time <= 100.0 + 3 * 1.0 + 1.0 + 1e-9

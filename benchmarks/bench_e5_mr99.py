"""E5 — Section 4: the MR99 asynchronous bridge."""

from __future__ import annotations

from repro.asyncsim.failure_detector import DetectorSpec
from repro.asyncsim.mr99 import MR99Consensus
from repro.asyncsim.runner import AsyncCrash, AsyncRunner
from repro.harness.experiments import e5_mr99
from repro.util.rng import RandomSource


def test_e5_report(benchmark, report):
    result = benchmark.pedantic(
        lambda: e5_mr99(n_values=(5, 9), seeds=10), rounds=1, iterations=1
    )
    report(result)
    assert result.findings["all_async_runs_uniform"] is True


def test_e5_kernel_failure_free(benchmark):
    def kernel():
        procs = [MR99Consensus(pid, 9, 100 + pid, 4) for pid in range(1, 10)]
        runner = AsyncRunner(
            procs,
            t=4,
            detector_spec=DetectorSpec(detection_latency=1.0),
            rng=RandomSource(1),
        )
        return runner.run()

    result = benchmark(kernel)
    assert result.check_consensus() == []


def test_e5_kernel_coordinator_cascade(benchmark):
    def kernel():
        procs = [MR99Consensus(pid, 9, 100 + pid, 4) for pid in range(1, 10)]
        runner = AsyncRunner(
            procs,
            t=4,
            crashes=[AsyncCrash(pid, 0.0) for pid in range(1, 5)],
            detector_spec=DetectorSpec(detection_latency=1.0),
            rng=RandomSource(1),
        )
        return runner.run()

    result = benchmark(kernel)
    assert result.check_consensus() == []
    assert set(result.decisions.values()) == {105}

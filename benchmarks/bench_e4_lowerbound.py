"""E4 — Theorems 3-5: certificates, exhaustive search, ablation."""

from __future__ import annotations

from repro.core.crw import CRWConsensus
from repro.harness.experiments import e4_lowerbound
from repro.lowerbound.explorer import ExplorationConfig, Explorer


def test_e4_report(benchmark, report):
    result = benchmark.pedantic(e4_lowerbound, rounds=1, iterations=1)
    report(result)
    assert all(v is True for v in result.findings.values()), result.findings


def test_e4_kernel_exhaustive_n4_t2(benchmark):
    def kernel():
        return Explorer(
            lambda: {pid: CRWConsensus(pid, 4, pid) for pid in range(1, 5)},
            ExplorationConfig(max_crashes=2, max_crashes_per_round=2, max_rounds=4),
        ).explore()

    explored = benchmark(kernel)
    assert explored.ok and explored.early_stopping_holds


def test_e4_kernel_exhaustive_n5_one_per_round(benchmark):
    def kernel():
        return Explorer(
            lambda: {pid: CRWConsensus(pid, 5, pid) for pid in range(1, 6)},
            ExplorationConfig(max_crashes=3, max_crashes_per_round=1, max_rounds=5),
        ).explore()

    explored = benchmark(kernel)
    assert explored.ok
    assert explored.worst_last_decision_round == 4  # f+1 with f=3

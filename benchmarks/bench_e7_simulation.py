"""E7 — Section 2.2: cost of simulating the extended model classically."""

from __future__ import annotations

from repro.core.crw import CRWConsensus
from repro.harness.experiments import e7_simulation
from repro.simulation.extended_on_classic import run_extended_on_classic
from repro.sync.crash import CrashSchedule
from repro.lowerbound.certificates import worst_case_schedule


def test_e7_report(benchmark, report):
    result = benchmark.pedantic(
        lambda: e7_simulation(n_values=(4, 8), f_values=(0, 1, 2)),
        rounds=1,
        iterations=1,
    )
    report(result)
    assert result.findings["simulated_runs_uniform"] is True


def test_e7_kernel_adapter_run(benchmark):
    n, f = 8, 2

    def kernel():
        return run_extended_on_classic(
            lambda: [CRWConsensus(pid, n, 100 + pid) for pid in range(1, n + 1)],
            worst_case_schedule(f),
            t=n - 1,
        )

    result = benchmark(kernel)
    # (f+1) blocks of n classic rounds each.
    assert result.last_decision_round == (f + 1) * n

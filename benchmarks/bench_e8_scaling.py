"""E8 — engine scaling and replicated-log throughput."""

from __future__ import annotations

from repro.harness.experiments import e8_scaling
from repro.harness.runner import RunConfig, run_once
from repro.rsm.log import ReplicatedLog
from repro.rsm.machine import Command, KVStore
from repro.util.rng import RandomSource


def test_e8_report(benchmark, report):
    result = benchmark.pedantic(
        lambda: e8_scaling(n_values=(8, 16, 32, 64), slots=20),
        rounds=1,
        iterations=1,
    )
    report(result)


def test_e8_kernel_crw_n64(benchmark):
    config = RunConfig("crw", 64, 63, 0, "none", seed=0)
    result = benchmark(run_once, config)
    assert result.rounds_executed == 1


def test_e8_kernel_crw_n128_cascade(benchmark):
    config = RunConfig("crw", 128, 127, 16, "coordinator-killer", seed=0)
    result = benchmark(run_once, config)
    assert result.last_decision_round == 17


def test_e8_kernel_rsm_slots(benchmark):
    def kernel():
        log = ReplicatedLog(16, KVStore, rng=RandomSource(1))
        for s in range(10):
            log.commit({1: Command(1, f"set k{s} v{s}")})
        return log

    log = benchmark(kernel)
    assert log.check_invariants() == []

"""E1 — Theorem 1: rounds to decision (table regeneration + micro-bench).

Regenerates the round-complexity comparison (CRW <= f+1 vs FloodSet t+1 vs
early-stopping min(f+2, t+1)) and times the underlying single-run kernel.
"""

from __future__ import annotations

from repro.harness.experiments import e1_rounds
from repro.harness.runner import RunConfig, run_once


def test_e1_report(benchmark, report):
    result = benchmark.pedantic(
        lambda: e1_rounds(n_values=(4, 8, 16), seeds=10),
        rounds=1,
        iterations=1,
    )
    report(result)
    assert result.findings["all_runs_satisfy_uniform_consensus"] is True
    assert result.findings["crw_bound_tight_under_cascade"] is True
    assert result.findings["crw_single_round_under_benign_crashes"] is True


def test_e1_kernel_crw_worst_case(benchmark):
    config = RunConfig("crw", 16, 15, 7, "coordinator-killer", seed=1)
    result = benchmark(run_once, config)
    assert result.last_decision_round == 8


def test_e1_kernel_early_stopping(benchmark):
    config = RunConfig("early-stopping", 16, 15, 7, "coordinator-killer", seed=1)
    result = benchmark(run_once, config)
    assert result.last_decision_round <= 9


def test_e1_kernel_floodset(benchmark):
    config = RunConfig("floodset", 16, 7, 3, "random-classic", seed=1)
    result = benchmark(run_once, config)
    assert result.last_decision_round == 8

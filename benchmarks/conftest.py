"""Shared helpers for the benchmark suite.

Every ``bench_eN_*.py`` regenerates one experiment of DESIGN.md §4 and
prints its table(s) through the capture bypass so they land in
``bench_output.txt`` alongside pytest-benchmark's timing table.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def report(capsys):
    """Print an ExperimentResult through the capture bypass."""

    def _print(result) -> None:
        with capsys.disabled():
            print()
            print(result.render())

    return _print

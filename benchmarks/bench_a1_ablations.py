"""A1 — ablations of the Figure-1 design choices.

Three load-bearing decisions in the paper's algorithm, each toggled and
measured:

1. **COMMIT wait (line 8)** — removing it (EagerCRW) breaks agreement
   under data-step crashes (counted over an adversary sweep);
2. **decreasing COMMIT order (line 5)** — reversing it keeps safety but
   breaks the f+1 early-stopping bound (worst observed round excess);
3. **higher-ids-only addressing (line 4)** — broadcasting to everyone
   keeps everything but wastes messages (counted).
"""

from __future__ import annotations

from repro.core.crw import CRWConsensus
from repro.core.variants import EagerCRW, FullBroadcastCRW, IncreasingCommitCRW
from repro.sync.adversary import CommitSplitter, CoordinatorKiller, RandomCrashes
from repro.sync.extended import ExtendedSynchronousEngine
from repro.sync.spec import check_consensus
from repro.util.rng import RandomSource
from repro.util.tables import Table


def sweep(cls, adversary, n=6, seeds=30):
    """Run one variant over an adversary sweep; return aggregate stats."""
    violations = 0
    worst_excess = 0
    total_msgs = 0
    for seed in range(seeds):
        rng = RandomSource(seed)
        f = rng.randint(0, n - 2)
        schedule = adversary(f).schedule(n, n - 1, rng)
        procs = [cls(pid, n, 100 + pid) for pid in range(1, n + 1)]
        result = ExtendedSynchronousEngine(
            procs, schedule, t=n - 1, rng=rng, trace=False
        ).run()
        report = check_consensus(result, require_early_stopping=True)
        if any("agreement" in v for v in report.violations):
            violations += 1
        if result.decisions:
            worst_excess = max(
                worst_excess, result.last_decision_round - (result.f + 1)
            )
        total_msgs += result.stats.messages_sent
    return violations, worst_excess, total_msgs / seeds


def run_ablation_table():
    table = Table(
        ["variant", "adversary", "agreement violations", "worst round excess", "mean msgs"],
        title="A1: Figure-1 design ablations (n=6, 30 seeds)",
    )
    cells = {}
    for name, cls in (
        ("paper", CRWConsensus),
        ("no-commit-wait", EagerCRW),
        ("increasing-commit", IncreasingCommitCRW),
        ("full-broadcast", FullBroadcastCRW),
    ):
        for adv_name, adv in (
            ("coordinator-killer-subset", lambda f: CoordinatorKiller(f, deliver_to_none=False)),
            ("commit-splitter", lambda f: CommitSplitter(f, prefix_len=None)),
            ("random", lambda f: RandomCrashes(f)),
        ):
            cell = sweep(cls, adv, n=6, seeds=30)
            cells[(name, adv_name)] = cell
            table.add_row(name, adv_name, *cell)
    return table, cells


def test_a1_ablations(benchmark, capsys):
    table, cells = benchmark.pedantic(run_ablation_table, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(table.to_ascii())

    # The paper's variant is clean everywhere.
    for adv in ("coordinator-killer-subset", "commit-splitter", "random"):
        violations, excess, _ = cells[("paper", adv)]
        assert violations == 0 and excess <= 0

    # Dropping the COMMIT wait breaks agreement under partial data delivery.
    assert any(
        cells[("no-commit-wait", adv)][0] > 0
        for adv in ("coordinator-killer-subset", "random")
    )

    # Reversing the commit order never breaks agreement but exceeds f+1.
    assert all(
        cells[("increasing-commit", adv)][0] == 0
        for adv in ("coordinator-killer-subset", "commit-splitter", "random")
    )
    assert any(
        cells[("increasing-commit", adv)][1] > 0
        for adv in ("commit-splitter", "random")
    )

    # Full broadcast: correct, just chattier than the paper under cascades.
    for adv in ("coordinator-killer-subset", "commit-splitter", "random"):
        violations, excess, _ = cells[("full-broadcast", adv)]
        assert violations == 0 and excess <= 0
    assert (
        cells[("full-broadcast", "coordinator-killer-subset")][2]
        >= cells[("paper", "coordinator-killer-subset")][2]
    )

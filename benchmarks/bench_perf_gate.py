"""Performance gate: the fast-path kernels, measured and regression-checked.

Thin checkout-level wrapper around :mod:`repro.harness.bench` (which also
backs the ``repro-consensus bench`` CLI subcommand):

* ``python benchmarks/bench_perf_gate.py --out BENCH_PR6.json`` measures
  the kernels and writes a machine-readable baseline;
* adding ``--check-against BENCH_PR6.json`` compares the fresh
  measurements to a previously written baseline and exits non-zero when
  any kernel regressed beyond ``--tolerance`` (default 1.25 = +25%).

See the bench module docstring for the kernel list and the normalization
scheme (scores are kernel seconds over a pure-Python calibration unit, so
host speed mostly cancels out of the gate).
"""

from __future__ import annotations

import os
import sys

# Allow running straight from a checkout: python benchmarks/bench_perf_gate.py
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.harness.bench import (  # noqa: E402  (path setup must precede)
    SCHEMA_VERSION,
    compare,
    main,
    measure,
)
from repro.harness.bench import _kernel_cascade_n128  # noqa: E402

__all__ = ["SCHEMA_VERSION", "measure", "compare", "main"]


# -- pytest-benchmark integration (optional, `pytest benchmarks/`) ----------


def test_perf_gate_kernels(benchmark):
    """Keep the gate kernels visible in the pytest-benchmark table."""
    benchmark.pedantic(_kernel_cascade_n128, rounds=3, iterations=1)


if __name__ == "__main__":
    raise SystemExit(main())

"""E3 — Section 2.2: the (f+1)(D+d) vs (f+2)D crossover series."""

from __future__ import annotations

from repro.harness.experiments import e3_timing
from repro.timing.model import RoundCost, timing_series


def test_e3_report(benchmark, report):
    result = benchmark.pedantic(e3_timing, rounds=1, iterations=1)
    report(result)
    assert result.findings["empirical_crossover_matches_formula"] is True


def test_e3_kernel_series(benchmark):
    series = benchmark(
        timing_series,
        100.0,
        (0, 1, 2, 4, 8),
        tuple(k / 100 for k in range(0, 160, 5)),
    )
    assert len(series) == 5 * 32


def test_e3_kernel_roundcost(benchmark):
    def kernel():
        cost = RoundCost(D=100.0, d=2.0)
        return [cost.extended_wins(f) for f in range(64)]

    wins = benchmark(kernel)
    # d=2: extended wins while f+1 < D/d = 50.
    assert wins[48] is True and wins[49] is False


def test_e3_kernel_vectorized_grid(benchmark):
    """The fine-resolution NumPy crossover map (1000 x 64 cells)."""
    import numpy as np

    from repro.timing.grid import crossover_curve, timing_grid

    def kernel():
        return timing_grid(100.0, np.linspace(0.0, 2.0, 1000), list(range(64)))

    grid = benchmark(kernel)
    assert grid["crw"].shape == (64, 1000)
    # Flip positions match the analytic crossover curve.
    curve = crossover_curve(100.0, list(range(64)))
    fracs = np.linspace(0.0, 2.0, 1000)
    for f in (0, 1, 7, 63):
        row = grid["extended_wins"][f]
        assert fracs[row][-1] < curve[f] <= fracs[~row][0] + 1e-9 if (~row).any() else True

"""E2 — Theorem 2: bit complexity vs the closed forms."""

from __future__ import annotations

from repro.harness.experiments import e2_bits
from repro.harness.runner import RunConfig, run_once


def test_e2_report(benchmark, report):
    result = benchmark.pedantic(
        lambda: e2_bits(n_values=(4, 8, 16, 32), bit_widths=(8, 64, 1024)),
        rounds=1,
        iterations=1,
    )
    report(result)
    assert result.findings["best_case_matches_formula_exactly"] is True
    assert result.findings["worst_case_within_paper_bound"] is True


def test_e2_kernel_best_case_wide_values(benchmark):
    config = RunConfig("crw", 32, 31, 0, "none", seed=0, value_bits=1024)
    result = benchmark(run_once, config)
    # (n-1)(|v|+1) exactly.
    assert result.stats.bits_sent == 31 * 1025


def test_e2_kernel_worst_case_traffic(benchmark):
    config = RunConfig("crw", 32, 31, 31, "max-traffic", seed=0, value_bits=64)
    result = benchmark(run_once, config)
    bound = sum(32 - r for r in range(1, 33)) * 65
    assert result.stats.bits_sent <= bound
